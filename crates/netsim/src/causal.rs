//! Causal provenance: the message-lineage DAG behind a traced execution,
//! and the three analyses the `explain` tooling builds on it.
//!
//! A schema-v2 trace carries enough lineage to reconstruct *why* the run
//! ended when it did and *where* the bits went:
//!
//! - every `Send`/`Deliver` has an engine-assigned [`EventId`];
//! - every `Deliver` points at the producing `Send` (`src`);
//! - a `Send` may declare the deliveries it depended on (`causes`, via
//!   `RoundCtx::send_caused_by`); when it declares nothing, this module
//!   falls back to the conservative closure — *all* deliveries the node
//!   had received by that round — which over-approximates but never
//!   misses a dependency.
//!
//! The DAG's vertices are `Send` events (plus the terminal `Decide`);
//! deliveries are the edges. Because a message broadcast in round `r` is
//! consumed in round `r + 1` at the earliest, every edge points from a
//! strictly earlier round to a later one — the DAG is acyclic by
//! construction (`tests/prop_causal.rs` pins it).
//!
//! Three analyses:
//!
//! 1. **Critical path** ([`CausalDag::critical_path`]) — the causal chain
//!    into the decision that explains the most latency (earliest start,
//!    then fewest idle rounds), attributing TC to concrete
//!    node/round/kind hops with per-hop slack.
//! 2. **CC blame** ([`Blame`]) — per-node, per-message-kind bit
//!    attribution; because the engine emits one `Send` event per kind
//!    with bits summed per kind, blame *partitions*
//!    `Metrics::bits_of` exactly for every node.
//! 3. **Coverage audit** ([`CausalDag::coverage`]) — walks the DAG
//!    backward from the decision to report which nodes' broadcasts are
//!    provably included in the output versus unreachable (crashed or
//!    partitioned), cross-checkable against the paper's surviving set
//!    `s1`.
//!
//! v1 traces (no lineage) still work: with every `src`/`causes` absent,
//! the conservative fallback reconstructs the full "could have
//! influenced" DAG from rounds alone.

use crate::adversary::Round;
use crate::graph::NodeId;
use crate::trace::{Event, EventId, Trace};
use std::collections::{BTreeMap, HashMap};

/// Blame bucket for `Send` events with an empty kind tag.
pub const UNTAGGED: &str = "(untagged)";

/// One broadcast on the critical path (or the terminal decision's
/// predecessor chain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The broadcasting node.
    pub node: NodeId,
    /// The round of the broadcast.
    pub round: Round,
    /// The message kind ([`UNTAGGED`] if the send was untagged).
    pub kind: String,
    /// Bits of the broadcast (of this kind).
    pub bits: u64,
    /// Idle rounds between this broadcast and the next hop consuming it:
    /// `next.round - round - 1` (0 = the chain advanced every round).
    pub slack: Round,
}

/// The longest causal chain terminating at the decision: the run's
/// termination-time explanation.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// The chain's broadcasts in causal order; the last hop's message is
    /// what the deciding node consumed.
    pub hops: Vec<Hop>,
    /// The deciding node (the root in the paper's protocols).
    pub decide_node: NodeId,
    /// The decision round — by definition the path's length in rounds,
    /// counted from the execution's first round.
    pub decide_round: Round,
    /// The decided value.
    pub decide_value: u64,
}

impl CriticalPath {
    /// The path's length in rounds — the decision round itself, since the
    /// chain (plus any schedule wait before its first hop) spans the whole
    /// execution from round 1 to the decision.
    pub fn length_rounds(&self) -> Round {
        self.decide_round
    }

    /// Rounds before the chain's first broadcast (schedule wait: non-zero
    /// when the decisive work started in a later Algorithm 1 interval).
    pub fn lead_in(&self) -> Round {
        self.hops.first().map_or(self.decide_round.saturating_sub(1), |h| h.round - 1)
    }

    /// Total idle rounds along the chain (sum of hop slack, including the
    /// final wait before the decision).
    pub fn total_slack(&self) -> Round {
        self.hops.iter().map(|h| h.slack).sum()
    }
}

/// Per-node, per-message-kind communication attribution. Built from the
/// per-kind `Send` events of a trace, so for every node the kinds sum to
/// exactly that node's `Metrics::bits_of`.
#[derive(Clone, Debug, Default)]
pub struct Blame {
    per_node: Vec<BTreeMap<String, u64>>,
}

impl Blame {
    /// Builds blame tables from a trace's `Send` events.
    pub fn from_trace(trace: &Trace) -> Blame {
        let n =
            trace.events().iter().filter_map(Event::node).map(|v| v.index() + 1).max().unwrap_or(0);
        let mut per_node = vec![BTreeMap::new(); n];
        for e in trace.events() {
            if let Event::Send { node, bits, kind, .. } = e {
                let key = if kind.is_empty() { UNTAGGED } else { kind.as_str() };
                *per_node[node.index()].entry(key.to_string()).or_insert(0) += bits;
            }
        }
        Blame { per_node }
    }

    /// Number of nodes covered (largest node index mentioned + 1).
    pub fn n(&self) -> usize {
        self.per_node.len()
    }

    /// All kinds appearing anywhere, sorted.
    pub fn kinds(&self) -> Vec<String> {
        let mut all: Vec<String> = self.per_node.iter().flat_map(|m| m.keys().cloned()).collect();
        all.sort();
        all.dedup();
        all
    }

    /// Bits node `v` spent on `kind` (0 if none).
    pub fn bits(&self, v: NodeId, kind: &str) -> u64 {
        self.per_node.get(v.index()).and_then(|m| m.get(kind)).copied().unwrap_or(0)
    }

    /// Node `v`'s total over all kinds — must equal `Metrics::bits_of(v)`
    /// for a complete trace (the partition property).
    pub fn node_total(&self, v: NodeId) -> u64 {
        self.per_node.get(v.index()).map_or(0, |m| m.values().sum())
    }

    /// Total bits of one kind across all nodes.
    pub fn kind_total(&self, kind: &str) -> u64 {
        self.per_node.iter().filter_map(|m| m.get(kind)).sum()
    }
}

/// Result of the coverage audit: which nodes' broadcasts are provably on
/// a causal path into the decision.
#[derive(Clone, Debug)]
pub struct Coverage {
    /// Nodes with at least one broadcast backward-reachable from the
    /// decision (the deciding node always included), sorted.
    pub included: Vec<NodeId>,
    /// The rest of the nodes, sorted — crashed, partitioned, or simply
    /// causally irrelevant to the decision.
    pub excluded: Vec<NodeId>,
    /// Nodes with a `Crash` event, sorted by node id.
    pub crashed: Vec<NodeId>,
    /// The decision this audit is anchored at, if the trace has one.
    pub decide: Option<(NodeId, Round)>,
}

/// One `Send` vertex of the provenance DAG.
#[derive(Clone, Debug)]
struct SendRec {
    node: NodeId,
    round: Round,
    bits: u64,
    kind: String,
}

/// The message-lineage DAG of one traced execution. Vertices are `Send`
/// events in trace (= round) order; edges go from a producing send to
/// each send that consumed one of its deliveries. The terminal `Decide`
/// (the **last** decide event — merged Algorithm 1 traces keep only the
/// accepted interval's) hangs off the sends its node had consumed.
#[derive(Clone, Debug)]
pub struct CausalDag {
    n: usize,
    sends: Vec<SendRec>,
    /// `parents[i]`: indices of sends that causally precede send `i`
    /// (sorted, deduplicated; always strictly earlier rounds).
    parents: Vec<Vec<usize>>,
    decide: Option<(NodeId, Round, u64)>,
    decide_parents: Vec<usize>,
    crashed: Vec<(NodeId, Round)>,
    truncated: bool,
}

impl CausalDag {
    /// Builds the DAG from a trace, applying the conservative fallback
    /// wherever explicit lineage is absent (v1 traces, protocols that
    /// never call `send_caused_by`, ring-truncated streams).
    pub fn from_trace(trace: &Trace) -> CausalDag {
        let n =
            trace.events().iter().filter_map(Event::node).map(|v| v.index() + 1).max().unwrap_or(0);

        // Pass 1: collect vertices and delivery records.
        struct DeliverRec {
            round: Round,
            from: NodeId,
            src: EventId,
        }
        let mut sends: Vec<SendRec> = Vec::new();
        let mut send_by_id: HashMap<u64, usize> = HashMap::new();
        // Producing-send lookup for deliveries without a resolvable `src`.
        let mut sends_at: HashMap<(NodeId, Round), Vec<usize>> = HashMap::new();
        let mut delivers: Vec<DeliverRec> = Vec::new();
        let mut deliver_by_id: HashMap<u64, usize> = HashMap::new();
        // Per node, delivery indices in round order (trace order).
        let mut delivers_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut send_causes: Vec<Vec<EventId>> = Vec::new();
        let mut decide = None;
        let mut crashed: Vec<(NodeId, Round)> = Vec::new();
        for e in trace.events() {
            match e {
                Event::Send { round, node, bits, kind, id, causes, .. } => {
                    let idx = sends.len();
                    sends.push(SendRec {
                        node: *node,
                        round: *round,
                        bits: *bits,
                        kind: kind.clone(),
                    });
                    send_causes.push(causes.clone());
                    if id.is_some() {
                        send_by_id.insert(id.0, idx);
                    }
                    sends_at.entry((*node, *round)).or_default().push(idx);
                }
                Event::Deliver { round, node, from, id, src, .. } => {
                    let idx = delivers.len();
                    delivers.push(DeliverRec { round: *round, from: *from, src: *src });
                    if id.is_some() {
                        deliver_by_id.insert(id.0, idx);
                    }
                    delivers_of[node.index()].push(idx);
                }
                Event::Decide { round, node, value } => {
                    decide = Some((*node, *round, *value));
                }
                Event::Crash { round, node } => crashed.push((*node, *round)),
                _ => {}
            }
        }

        // A delivery's producing sends: its `src` when resolvable, else
        // every send by `from` in the previous round.
        let producers = |d: &DeliverRec, out: &mut Vec<usize>| {
            if let Some(&si) = send_by_id.get(&d.src.0) {
                if d.src.is_some() {
                    out.push(si);
                    return;
                }
            }
            if d.round > 0 {
                if let Some(v) = sends_at.get(&(d.from, d.round - 1)) {
                    out.extend_from_slice(v);
                }
            }
        };

        // Pass 2: resolve each send's parents.
        let mut parents: Vec<Vec<usize>> = Vec::with_capacity(sends.len());
        let mut scratch: Vec<usize> = Vec::new();
        for (si, s) in sends.iter().enumerate() {
            scratch.clear();
            let explicit = &send_causes[si];
            if explicit.is_empty() {
                // Conservative closure: every delivery this node had
                // consumed by the broadcast's round.
                for &di in &delivers_of[s.node.index()] {
                    let d = &delivers[di];
                    if d.round <= s.round {
                        producers(d, &mut scratch);
                    } else {
                        break; // round-ordered: nothing earlier follows
                    }
                }
            } else {
                for c in explicit {
                    if let Some(&di) = deliver_by_id.get(&c.0) {
                        producers(&delivers[di], &mut scratch);
                    }
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            // Lineage can only point backward; drop anything that does not
            // (defensive — ring-truncated or hand-edited traces).
            scratch.retain(|&p| sends[p].round < s.round);
            parents.push(scratch.clone());
        }

        // The decision depends on everything its node had consumed.
        let mut decide_parents = Vec::new();
        if let Some((node, round, _)) = decide {
            scratch.clear();
            for &di in &delivers_of[node.index()] {
                let d = &delivers[di];
                if d.round <= round {
                    producers(d, &mut scratch);
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            scratch.retain(|&p| sends[p].round < round || sends[p].node == node);
            decide_parents = scratch.clone();
        }

        crashed.sort_unstable_by_key(|&(v, _)| v);
        CausalDag {
            n,
            sends,
            parents,
            decide,
            decide_parents,
            crashed,
            truncated: trace.truncated(),
        }
    }

    /// Number of `Send` vertices.
    pub fn send_count(&self) -> usize {
        self.sends.len()
    }

    /// Number of nodes mentioned anywhere in the trace.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Whether the underlying trace was marked truncated.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The (node, round, kind, bits) of send vertex `i` (trace order).
    pub fn send_info(&self, i: usize) -> (NodeId, Round, &str, u64) {
        let s = &self.sends[i];
        (s.node, s.round, &s.kind, s.bits)
    }

    /// The parent vertices (causal predecessors) of send `i`.
    pub fn parents_of(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// The terminal decision, if the trace has one.
    pub fn decide(&self) -> Option<(NodeId, Round, u64)> {
        self.decide
    }

    /// All edges `(parent, child)` over send vertices.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.parents.iter().enumerate().flat_map(|(child, ps)| ps.iter().map(move |&p| (p, child)))
    }

    /// The longest causal chain terminating at the decision: among chains
    /// into the `Decide`, the one starting earliest (explaining the most
    /// latency — by telescoping, a chain from round `r0` explains
    /// `decide_round - r0` rounds), tie-broken toward more hops (least
    /// slack). `None` if the trace has no decision.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let (decide_node, decide_round, decide_value) = self.decide?;
        // DP in vertex order (parents strictly precede children):
        // (earliest chain start, hop count, best parent).
        let mut best: Vec<(Round, u64, Option<usize>)> = Vec::with_capacity(self.sends.len());
        for (i, s) in self.sends.iter().enumerate() {
            let mut b = (s.round, 0u64, None);
            for &p in &self.parents[i] {
                let cand = (best[p].0, best[p].1 + 1, Some(p));
                if cand.0 < b.0 || (cand.0 == b.0 && cand.1 > b.1) {
                    b = cand;
                }
            }
            best.push(b);
        }
        let last = self
            .decide_parents
            .iter()
            .copied()
            .min_by(|&a, &b| best[a].0.cmp(&best[b].0).then(best[b].1.cmp(&best[a].1)));
        // Reconstruct the chain backward, then reverse.
        let mut chain = Vec::new();
        let mut cur = last;
        while let Some(i) = cur {
            chain.push(i);
            cur = best[i].2;
        }
        chain.reverse();
        let mut hops = Vec::with_capacity(chain.len());
        for (k, &i) in chain.iter().enumerate() {
            let s = &self.sends[i];
            let next_round = chain.get(k + 1).map_or(decide_round, |&j| self.sends[j].round);
            let kind = if s.kind.is_empty() { UNTAGGED.to_string() } else { s.kind.clone() };
            hops.push(Hop {
                node: s.node,
                round: s.round,
                kind,
                bits: s.bits,
                slack: next_round.saturating_sub(s.round + 1),
            });
        }
        Some(CriticalPath { hops, decide_node, decide_round, decide_value })
    }

    /// Walks the DAG backward from the decision: nodes with a broadcast on
    /// some causal path into the output are *provably included*; the rest
    /// were lost to crashes, partitions, or never contributed.
    pub fn coverage(&self) -> Coverage {
        let mut reach = vec![false; self.sends.len()];
        let mut stack: Vec<usize> = self.decide_parents.clone();
        for &i in &stack {
            reach[i] = true;
        }
        while let Some(i) = stack.pop() {
            for &p in &self.parents[i] {
                if !reach[p] {
                    reach[p] = true;
                    stack.push(p);
                }
            }
        }
        let mut included = vec![false; self.n];
        if let Some((node, _, _)) = self.decide {
            included[node.index()] = true;
        }
        for (i, s) in self.sends.iter().enumerate() {
            if reach[i] {
                included[s.node.index()] = true;
            }
        }
        let inc: Vec<NodeId> =
            (0..self.n as u32).map(NodeId).filter(|v| included[v.index()]).collect();
        let exc: Vec<NodeId> =
            (0..self.n as u32).map(NodeId).filter(|v| !included[v.index()]).collect();
        Coverage {
            included: inc,
            excluded: exc,
            crashed: self.crashed.iter().map(|&(v, _)| v).collect(),
            decide: self.decide.map(|(v, r, _)| (v, r)),
        }
    }
}

/// Folded stacks (speedscope/inferno `a;b;c weight` lines) of a trace's
/// communication: frames are the open phases at the send's round, then the
/// node, then the message kind; weights are bits. Sorted by stack, merged.
pub fn folded_stacks(trace: &Trace) -> Vec<(String, u64)> {
    let mut open: Vec<&str> = Vec::new();
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for e in trace.events() {
        match e {
            Event::PhaseEnter { label, .. } => open.push(label),
            Event::PhaseExit { .. } => {
                open.pop();
            }
            Event::Send { node, bits, kind, .. } => {
                let mut key = String::new();
                for p in &open {
                    key.push_str(p);
                    key.push(';');
                }
                key.push_str(&format!("n{}", node.0));
                key.push(';');
                key.push_str(if kind.is_empty() { UNTAGGED } else { kind });
                *agg.entry(key).or_insert(0) += bits;
            }
            _ => {}
        }
    }
    agg.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(round: Round, node: u32, bits: u64, id: u64, kind: &str, causes: &[u64]) -> Event {
        Event::Send {
            round,
            node: NodeId(node),
            bits,
            logical: 1,
            id: EventId(id),
            kind: kind.into(),
            causes: causes.iter().map(|&c| EventId(c)).collect(),
        }
    }

    fn deliver(round: Round, node: u32, from: u32, id: u64, src: u64) -> Event {
        Event::Deliver {
            round,
            node: NodeId(node),
            from: NodeId(from),
            bits: 1,
            id: EventId(id),
            src: EventId(src),
        }
    }

    /// A 3-node relay: n2 sends (r1) -> n1 delivers+forwards (r2) ->
    /// n0 delivers (r3) and decides (r5).
    fn relay() -> Trace {
        let mut t = Trace::new();
        t.push(send(1, 2, 10, 1, "tree-construct", &[]));
        t.push(deliver(2, 1, 2, 2, 1));
        t.push(send(2, 1, 7, 3, "aggregate", &[2]));
        t.push(deliver(3, 0, 1, 4, 3));
        t.push(Event::Decide { round: 5, node: NodeId(0), value: 42 });
        t
    }

    #[test]
    fn explicit_lineage_builds_the_relay_chain() {
        let dag = CausalDag::from_trace(&relay());
        assert_eq!(dag.send_count(), 2);
        assert_eq!(dag.parents_of(0), &[] as &[usize]);
        assert_eq!(dag.parents_of(1), &[0]);
        let cp = dag.critical_path().unwrap();
        assert_eq!(cp.length_rounds(), 5);
        assert_eq!(cp.hops.len(), 2);
        assert_eq!((cp.hops[0].node, cp.hops[0].round), (NodeId(2), 1));
        assert_eq!(cp.hops[0].slack, 0);
        // Final hop: sent r2, decision r5 -> 2 idle rounds.
        assert_eq!(cp.hops[1].slack, 2);
        assert_eq!(cp.total_slack(), 2);
        assert_eq!(cp.lead_in(), 0);
    }

    #[test]
    fn v1_trace_falls_back_to_conservative_lineage() {
        // Same relay, but stripped of all ids/causes (as a v1 trace).
        let mut t = Trace::new();
        t.push(Event::send(1, NodeId(2), 10, 1));
        t.push(Event::deliver(2, NodeId(1), NodeId(2), 1));
        t.push(Event::send(2, NodeId(1), 7, 1));
        t.push(Event::deliver(3, NodeId(0), NodeId(1), 7));
        t.push(Event::Decide { round: 5, node: NodeId(0), value: 42 });
        let dag = CausalDag::from_trace(&t);
        assert_eq!(dag.parents_of(1), &[0]);
        let cp = dag.critical_path().unwrap();
        assert_eq!(cp.length_rounds(), 5);
        assert_eq!(cp.hops.len(), 2);
    }

    #[test]
    fn edges_point_to_strictly_earlier_rounds() {
        let dag = CausalDag::from_trace(&relay());
        for (p, c) in dag.edges() {
            assert!(dag.send_info(p).1 < dag.send_info(c).1);
        }
    }

    #[test]
    fn blame_partitions_bits_per_node_and_kind() {
        let mut t = relay();
        // A second kind at n1 in the same round.
        t.retain(|e| !matches!(e, Event::Decide { .. }));
        t.push(send(4, 1, 3, 9, "veri", &[]));
        t.push(send(4, 1, 2, 10, "", &[]));
        let b = Blame::from_trace(&t);
        assert_eq!(b.bits(NodeId(2), "tree-construct"), 10);
        assert_eq!(b.bits(NodeId(1), "aggregate"), 7);
        assert_eq!(b.bits(NodeId(1), "veri"), 3);
        assert_eq!(b.bits(NodeId(1), UNTAGGED), 2);
        assert_eq!(b.node_total(NodeId(1)), 12);
        assert_eq!(b.kind_total("tree-construct"), 10);
        assert_eq!(b.kinds(), vec!["(untagged)", "aggregate", "tree-construct", "veri"]);
        let m = t.replay_metrics();
        for v in 0..b.n() as u32 {
            assert_eq!(b.node_total(NodeId(v)), m.bits_of(NodeId(v)));
        }
    }

    #[test]
    fn coverage_includes_the_chain_and_excludes_bystanders() {
        let mut t = relay();
        // n3 sends but nothing of its ever reaches the root's decision.
        t.retain(|e| !matches!(e, Event::Decide { .. }));
        let mut t2 = Trace::new();
        for e in t.events() {
            t2.push(e.clone());
        }
        t2.push(send(3, 3, 5, 20, "", &[]));
        t2.push(Event::Crash { round: 4, node: NodeId(3) });
        t2.push(Event::Decide { round: 5, node: NodeId(0), value: 42 });
        let cov = CausalDag::from_trace(&t2).coverage();
        assert_eq!(cov.included, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(cov.excluded, vec![NodeId(3)]);
        assert_eq!(cov.crashed, vec![NodeId(3)]);
        assert_eq!(cov.decide, Some((NodeId(0), 5)));
    }

    #[test]
    fn no_decide_means_no_critical_path() {
        let mut t = Trace::new();
        t.push(send(1, 0, 4, 1, "", &[]));
        let dag = CausalDag::from_trace(&t);
        assert!(dag.critical_path().is_none());
        let cov = dag.coverage();
        assert!(cov.decide.is_none());
        assert_eq!(cov.included, vec![]);
    }

    #[test]
    fn folded_stacks_nest_phases_nodes_and_kinds() {
        let mut t = Trace::new();
        t.push(Event::PhaseEnter { round: 1, label: "AGG".into() });
        t.push(send(1, 0, 5, 1, "tree-construct", &[]));
        t.push(send(1, 0, 3, 2, "tree-construct", &[]));
        t.push(send(2, 1, 2, 3, "", &[]));
        t.push(Event::PhaseExit { round: 3, label: "AGG".into() });
        t.push(send(4, 0, 1, 4, "veri", &[]));
        let folded = folded_stacks(&t);
        assert_eq!(
            folded,
            vec![
                ("AGG;n0;tree-construct".to_string(), 8),
                ("AGG;n1;(untagged)".to_string(), 2),
                ("n0;veri".to_string(), 1),
            ]
        );
    }
}
