//! Communication metering.
//!
//! The paper defines a node's communication complexity as the total number
//! of bits it locally broadcasts over the execution, and a protocol's CC as
//! the maximum over nodes (the bottleneck node). [`Metrics`] records exactly
//! that, plus per-round totals so experiments can attribute cost to
//! Algorithm 1's intervals.

use crate::adversary::Round;
use crate::graph::NodeId;

/// Per-node and per-round communication counters for one execution.
///
/// Per-round totals live in a dense `Vec` indexed by round (rounds are
/// 1-based and bounded by the run's horizon), so the engine's per-send
/// bookkeeping is an array increment instead of a map insertion.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    bits: Vec<u64>,
    sends: Vec<u64>,
    /// `per_round_bits[r]` is the system-wide bits sent in round `r`
    /// (index 0 is unused: rounds are 1-based). Grows on demand.
    per_round_bits: Vec<u64>,
    last_send_round: Option<Round>,
}

impl Metrics {
    /// Fresh counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            bits: vec![0; n],
            sends: vec![0; n],
            per_round_bits: Vec::new(),
            last_send_round: None,
        }
    }

    /// Records a broadcast by `node` in `round` of `bits` total bits across
    /// `logical` combined messages.
    pub fn record_send(&mut self, node: NodeId, round: Round, bits: u64, logical: u64) {
        self.bits[node.index()] += bits;
        self.sends[node.index()] += logical;
        let idx = round as usize;
        if idx >= self.per_round_bits.len() {
            self.per_round_bits.resize(idx + 1, 0);
        }
        self.per_round_bits[idx] += bits;
        self.last_send_round = Some(self.last_send_round.map_or(round, |r| r.max(round)));
    }

    /// Total bits broadcast by `node`.
    pub fn bits_of(&self, node: NodeId) -> u64 {
        self.bits[node.index()]
    }

    /// Number of logical messages broadcast by `node`.
    pub fn sends_of(&self, node: NodeId) -> u64 {
        self.sends[node.index()]
    }

    /// The paper's CC for this execution: maximum bits over all nodes.
    pub fn max_bits(&self) -> u64 {
        self.bits.iter().copied().max().unwrap_or(0)
    }

    /// The node achieving [`Metrics::max_bits`] (lowest id on ties).
    pub fn bottleneck(&self) -> Option<NodeId> {
        let max = self.max_bits();
        self.bits.iter().position(|&b| b == max).map(|i| NodeId(i as u32))
    }

    /// Sum of bits over all nodes (useful for average-node comparisons).
    pub fn total_bits(&self) -> u64 {
        self.bits.iter().sum()
    }

    /// Mean bits per node.
    pub fn mean_bits(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.total_bits() as f64 / self.bits.len() as f64
        }
    }

    /// Bits broadcast system-wide during the inclusive round window.
    pub fn bits_in_rounds(&self, window: std::ops::RangeInclusive<Round>) -> u64 {
        let len = self.per_round_bits.len() as Round;
        if len == 0 {
            return 0;
        }
        let lo = (*window.start()).min(len) as usize;
        let hi = (*window.end()).min(len.saturating_sub(1)) as usize;
        if lo > hi {
            return 0;
        }
        self.per_round_bits[lo..=hi].iter().sum()
    }

    /// Bits broadcast system-wide in a single round.
    pub fn bits_in_round(&self, round: Round) -> u64 {
        self.per_round_bits.get(round as usize).copied().unwrap_or(0)
    }

    /// Iterator over `(round, bits)` for every round with traffic, in
    /// ascending round order.
    pub fn per_round_bits(&self) -> impl Iterator<Item = (Round, u64)> + '_ {
        self.per_round_bits
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0)
            .map(|(r, &b)| (r as Round, b))
    }

    /// Last round in which any node broadcast, if any traffic occurred.
    pub fn last_send_round(&self) -> Option<Round> {
        self.last_send_round
    }

    /// Per-node bit totals, indexed by node id.
    pub fn bits_per_node(&self) -> &[u64] {
        &self.bits
    }

    /// Merges another execution's counters into this one, shifting the
    /// other execution's (1-based) round numbers by `offset` global rounds
    /// — so a sub-protocol that ran in its own engine starting at global
    /// round `offset + 1` lands in the right window of the merged
    /// per-round ledger. Algorithm 1 uses this to attribute bits to its
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn absorb_shifted(&mut self, other: &Metrics, offset: Round) {
        assert_eq!(self.bits.len(), other.bits.len(), "node count mismatch");
        for i in 0..self.bits.len() {
            self.bits[i] += other.bits[i];
            self.sends[i] += other.sends[i];
        }
        if !other.per_round_bits.is_empty() {
            let need = other.per_round_bits.len() + offset as usize;
            if need > self.per_round_bits.len() {
                self.per_round_bits.resize(need, 0);
            }
            for (r, &b) in other.per_round_bits.iter().enumerate() {
                if b > 0 {
                    self.per_round_bits[r + offset as usize] += b;
                }
            }
        }
        let shifted_last = other.last_send_round.map(|r| r + offset);
        self.last_send_round = match (self.last_send_round, shifted_last) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Merges another execution's counters into this one (used by the
    /// repetition-based protocols to account several runs as one).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn absorb(&mut self, other: &Metrics) {
        assert_eq!(self.bits.len(), other.bits.len(), "node count mismatch");
        for i in 0..self.bits.len() {
            self.bits[i] += other.bits[i];
            self.sends[i] += other.sends[i];
        }
        if other.per_round_bits.len() > self.per_round_bits.len() {
            self.per_round_bits.resize(other.per_round_bits.len(), 0);
        }
        for (r, &b) in other.per_round_bits.iter().enumerate() {
            if b > 0 {
                self.per_round_bits[r] += b;
            }
        }
        self.last_send_round = match (self.last_send_round, other.last_send_round) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut m = Metrics::new(3);
        m.record_send(NodeId(0), 1, 10, 2);
        m.record_send(NodeId(1), 1, 4, 1);
        m.record_send(NodeId(0), 3, 6, 1);
        assert_eq!(m.bits_of(NodeId(0)), 16);
        assert_eq!(m.sends_of(NodeId(0)), 3);
        assert_eq!(m.max_bits(), 16);
        assert_eq!(m.bottleneck(), Some(NodeId(0)));
        assert_eq!(m.total_bits(), 20);
        assert!((m.mean_bits() - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.bits_in_rounds(1..=1), 14);
        assert_eq!(m.bits_in_rounds(2..=3), 6);
        assert_eq!(m.last_send_round(), Some(3));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(2);
        assert_eq!(m.max_bits(), 0);
        assert_eq!(m.total_bits(), 0);
        assert_eq!(m.last_send_round(), None);
        assert_eq!(m.bottleneck(), Some(NodeId(0)));
    }

    #[test]
    fn absorb_merges_everything() {
        let mut a = Metrics::new(2);
        a.record_send(NodeId(0), 1, 5, 1);
        let mut b = Metrics::new(2);
        b.record_send(NodeId(1), 4, 7, 2);
        a.absorb(&b);
        assert_eq!(a.bits_of(NodeId(0)), 5);
        assert_eq!(a.bits_of(NodeId(1)), 7);
        assert_eq!(a.sends_of(NodeId(1)), 2);
        assert_eq!(a.last_send_round(), Some(4));
        assert_eq!(a.bits_in_rounds(1..=4), 12);
    }

    #[test]
    fn absorb_shifted_moves_rounds() {
        let mut a = Metrics::new(2);
        a.record_send(NodeId(0), 1, 5, 1);
        let mut b = Metrics::new(2);
        b.record_send(NodeId(1), 3, 7, 1);
        a.absorb_shifted(&b, 100);
        assert_eq!(a.bits_in_rounds(1..=10), 5);
        assert_eq!(a.bits_in_rounds(101..=110), 7);
        assert_eq!(a.last_send_round(), Some(103));
        assert_eq!(a.total_bits(), 12);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn absorb_rejects_mismatch() {
        let mut a = Metrics::new(2);
        let b = Metrics::new(3);
        a.absorb(&b);
    }
}
