//! Communication metering.
//!
//! The paper defines a node's communication complexity as the total number
//! of bits it locally broadcasts over the execution, and a protocol's CC as
//! the maximum over nodes (the bottleneck node). [`Metrics`] records exactly
//! that, plus per-round totals so experiments can attribute cost to
//! Algorithm 1's intervals.
//!
//! # Phase attribution
//!
//! Algorithm 1 spends its budget in a known structure — intervals of `19c`
//! flooding rounds, each holding an AGG/VERI pair — and the interesting
//! question is rarely "how many bits total" but "how many bits *where*".
//! The phase API attributes the per-round ledgers to labeled round spans:
//! a harness calls [`Metrics::enter_phase`]/[`Metrics::exit_phase`] around
//! the rounds a phase occupies (or [`Metrics::push_span`] for a span known
//! after the fact), and [`Metrics::phases`] derives per-phase bits, sends,
//! and rounds from the same ledgers that answer
//! [`Metrics::bits_in_rounds`] — so phase rows always sum consistently
//! with the whole-run counters. Spans may nest (an interval containing its
//! AGG and VERI halves); [`PhaseStats::depth`] reports the nesting level.

use crate::adversary::Round;
use crate::graph::NodeId;

/// A labeled, inclusive span of rounds inside one execution.
///
/// `end == None` means the phase is still open; [`Metrics::phases`] clamps
/// open spans to the last round the metrics have seen.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase label (e.g. `"AGG"`, `"interval 3"`).
    pub label: String,
    /// First round of the phase (1-based, inclusive).
    pub start: Round,
    /// Last round of the phase (inclusive), if closed.
    pub end: Option<Round>,
}

/// Derived per-phase statistics (see [`Metrics::phases`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStats {
    /// Phase label.
    pub label: String,
    /// First round of the phase.
    pub start: Round,
    /// Last round of the phase (open spans are clamped to the last round
    /// the metrics observed).
    pub end: Round,
    /// Rounds the phase occupies (`end - start + 1`).
    pub rounds: Round,
    /// System-wide bits broadcast during the phase — the phase's TC-window
    /// share of CC traffic.
    pub bits: u64,
    /// System-wide logical messages broadcast during the phase.
    pub sends: u64,
    /// Nesting depth: how many other recorded spans strictly contain this
    /// one (0 for top-level phases).
    pub depth: usize,
}

/// Per-node and per-round communication counters for one execution.
///
/// Per-round totals live in a dense `Vec` indexed by round (rounds are
/// 1-based and bounded by the run's horizon), so the engine's per-send
/// bookkeeping is an array increment instead of a map insertion.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    bits: Vec<u64>,
    sends: Vec<u64>,
    /// `per_round_bits[r]` is the system-wide bits sent in round `r`
    /// (index 0 is unused: rounds are 1-based). Grows on demand.
    per_round_bits: Vec<u64>,
    /// `per_round_sends[r]` is the system-wide logical message count of
    /// round `r`; same indexing as `per_round_bits`.
    per_round_sends: Vec<u64>,
    last_send_round: Option<Round>,
    /// Recorded phase spans, in the order they were entered/pushed.
    spans: Vec<PhaseSpan>,
    /// Indices into `spans` of currently open phases (a stack: phases
    /// close innermost-first).
    open: Vec<usize>,
    /// The highest round these metrics have observed — advanced by
    /// [`Metrics::note_round`] and by every recorded send. Used to place
    /// [`Metrics::enter_phase`] and clamp open spans.
    cursor: Round,
    /// Lean mode skips the per-round ledger (see [`Metrics::lean`]).
    lean: bool,
}

impl Metrics {
    /// Fresh counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            bits: vec![0; n],
            sends: vec![0; n],
            per_round_bits: Vec::new(),
            per_round_sends: Vec::new(),
            last_send_round: None,
            spans: Vec::new(),
            open: Vec::new(),
            cursor: 0,
            lean: false,
        }
    }

    /// Fresh counters that never materialize the per-round ledger: per-node
    /// totals, CC ([`Metrics::max_bits`]) and TC stay exact, but
    /// round-windowed queries ([`Metrics::bits_in_round`] and friends) and
    /// phase `bits`/`sends` read as zero. For streaming million-node runs
    /// where O(rounds) history is dead weight — pair with a per-round
    /// stream (e.g. `SoaEngine::stream_rounds`) if the ledger is wanted.
    pub fn lean(n: usize) -> Self {
        let mut m = Self::new(n);
        m.lean = true;
        m
    }

    /// Whether the per-round ledger is being skipped.
    pub fn is_lean(&self) -> bool {
        self.lean
    }

    /// Records a broadcast by `node` in `round` of `bits` total bits across
    /// `logical` combined messages.
    pub fn record_send(&mut self, node: NodeId, round: Round, bits: u64, logical: u64) {
        self.bits[node.index()] += bits;
        self.sends[node.index()] += logical;
        if !self.lean {
            let idx = round as usize;
            if idx >= self.per_round_bits.len() {
                self.per_round_bits.resize(idx + 1, 0);
                self.per_round_sends.resize(idx + 1, 0);
            }
            self.per_round_bits[idx] += bits;
            self.per_round_sends[idx] += logical;
        }
        self.last_send_round = Some(self.last_send_round.map_or(round, |r| r.max(round)));
        self.cursor = self.cursor.max(round);
    }

    /// Total bits broadcast by `node`.
    pub fn bits_of(&self, node: NodeId) -> u64 {
        self.bits[node.index()]
    }

    /// Number of logical messages broadcast by `node`.
    pub fn sends_of(&self, node: NodeId) -> u64 {
        self.sends[node.index()]
    }

    /// The paper's CC for this execution: maximum bits over all nodes.
    pub fn max_bits(&self) -> u64 {
        self.bits.iter().copied().max().unwrap_or(0)
    }

    /// The node achieving [`Metrics::max_bits`] (lowest id on ties).
    pub fn bottleneck(&self) -> Option<NodeId> {
        let max = self.max_bits();
        self.bits.iter().position(|&b| b == max).map(|i| NodeId(i as u32))
    }

    /// Sum of bits over all nodes (useful for average-node comparisons).
    pub fn total_bits(&self) -> u64 {
        self.bits.iter().sum()
    }

    /// Mean bits per node.
    pub fn mean_bits(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.total_bits() as f64 / self.bits.len() as f64
        }
    }

    /// Bits broadcast system-wide during the inclusive round window.
    pub fn bits_in_rounds(&self, window: std::ops::RangeInclusive<Round>) -> u64 {
        let len = self.per_round_bits.len() as Round;
        if len == 0 {
            return 0;
        }
        let lo = (*window.start()).min(len) as usize;
        let hi = (*window.end()).min(len.saturating_sub(1)) as usize;
        if lo > hi {
            return 0;
        }
        self.per_round_bits[lo..=hi].iter().sum()
    }

    /// Bits broadcast system-wide in a single round.
    pub fn bits_in_round(&self, round: Round) -> u64 {
        self.per_round_bits.get(round as usize).copied().unwrap_or(0)
    }

    /// Logical messages broadcast system-wide during the inclusive window.
    pub fn sends_in_rounds(&self, window: std::ops::RangeInclusive<Round>) -> u64 {
        let len = self.per_round_sends.len() as Round;
        if len == 0 {
            return 0;
        }
        let lo = (*window.start()).min(len) as usize;
        let hi = (*window.end()).min(len.saturating_sub(1)) as usize;
        if lo > hi {
            return 0;
        }
        self.per_round_sends[lo..=hi].iter().sum()
    }

    /// Advances the round cursor: tells the metrics that the execution has
    /// reached (at least) `round`, even if nothing was sent. The engine
    /// calls this once per step so [`Metrics::enter_phase`] can place the
    /// next phase correctly during silent rounds.
    pub fn note_round(&mut self, round: Round) {
        self.cursor = self.cursor.max(round);
    }

    /// The highest round observed so far (via sends or
    /// [`Metrics::note_round`]).
    pub fn current_round(&self) -> Round {
        self.cursor
    }

    /// Opens a phase starting at the *next* round (cursor + 1): call it
    /// just before handing the engine the rounds the phase occupies.
    /// Phases may nest; close them innermost-first with
    /// [`Metrics::exit_phase`]. Returns the phase's start round.
    pub fn enter_phase(&mut self, label: impl Into<String>) -> Round {
        let start = self.cursor + 1;
        self.enter_phase_at(label, start);
        start
    }

    /// Opens a phase starting at an explicit round.
    pub fn enter_phase_at(&mut self, label: impl Into<String>, start: Round) {
        self.open.push(self.spans.len());
        self.spans.push(PhaseSpan { label: label.into(), start, end: None });
    }

    /// Closes the innermost open phase at the current cursor round.
    /// Returns the closed span's label and end round, or `None` if no
    /// phase is open.
    pub fn exit_phase(&mut self) -> Option<(String, Round)> {
        self.exit_phase_at(self.cursor)
    }

    /// Closes the innermost open phase at an explicit end round (clamped
    /// to be no earlier than the phase's start, so an empty phase spans
    /// exactly its start round).
    pub fn exit_phase_at(&mut self, end: Round) -> Option<(String, Round)> {
        let idx = self.open.pop()?;
        let span = &mut self.spans[idx];
        let end = end.max(span.start);
        span.end = Some(end);
        Some((span.label.clone(), end))
    }

    /// Records an already-closed span (for phases whose extent is only
    /// known after the fact, e.g. Algorithm 1 attributing an interval
    /// window after merging a sub-execution).
    pub fn push_span(&mut self, label: impl Into<String>, start: Round, end: Round) {
        let end = end.max(start);
        self.spans.push(PhaseSpan { label: label.into(), start, end: Some(end) });
        self.cursor = self.cursor.max(end);
    }

    /// The raw recorded spans, in entry order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Derives per-phase statistics from the recorded spans and the
    /// per-round ledgers, in span entry order. Open spans are clamped to
    /// the cursor (last observed round). Because the stats come from the
    /// same ledger as [`Metrics::bits_in_rounds`], a phase's `bits` equals
    /// `bits_in_rounds(start..=end)` exactly.
    pub fn phases(&self) -> Vec<PhaseStats> {
        let resolved: Vec<(Round, Round)> = self
            .spans
            .iter()
            .map(|s| (s.start, s.end.unwrap_or_else(|| self.cursor.max(s.start))))
            .collect();
        self.spans
            .iter()
            .zip(&resolved)
            .enumerate()
            .map(|(i, (span, &(start, end)))| {
                // Depth = spans strictly containing this one; a span with
                // the identical window counts only if it was entered
                // earlier (the enclosing phase opens first).
                let depth = resolved
                    .iter()
                    .enumerate()
                    .filter(|&(j, &(s, e))| {
                        j != i && s <= start && e >= end && ((s, e) != (start, end) || j < i)
                    })
                    .count();
                PhaseStats {
                    label: span.label.clone(),
                    start,
                    end,
                    rounds: end - start + 1,
                    bits: self.bits_in_rounds(start..=end),
                    sends: self.sends_in_rounds(start..=end),
                    depth,
                }
            })
            .collect()
    }

    /// Sum of bits over the top-level (depth-0) phases — when phases
    /// partition the run, this equals [`Metrics::total_bits`], which is
    /// exactly what the attribution harnesses assert.
    pub fn top_level_phase_bits(&self) -> u64 {
        self.phases().iter().filter(|p| p.depth == 0).map(|p| p.bits).sum()
    }

    /// Iterator over `(round, bits)` for every round with traffic, in
    /// ascending round order.
    pub fn per_round_bits(&self) -> impl Iterator<Item = (Round, u64)> + '_ {
        self.per_round_bits
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0)
            .map(|(r, &b)| (r as Round, b))
    }

    /// Last round in which any node broadcast, if any traffic occurred.
    pub fn last_send_round(&self) -> Option<Round> {
        self.last_send_round
    }

    /// Per-node bit totals, indexed by node id.
    pub fn bits_per_node(&self) -> &[u64] {
        &self.bits
    }

    /// Merges another execution's counters into this one, shifting the
    /// other execution's (1-based) round numbers by `offset` global rounds
    /// — so a sub-protocol that ran in its own engine starting at global
    /// round `offset + 1` lands in the right window of the merged
    /// per-round ledger. Algorithm 1 uses this to attribute bits to its
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn absorb_shifted(&mut self, other: &Metrics, offset: Round) {
        assert_eq!(self.bits.len(), other.bits.len(), "node count mismatch");
        for i in 0..self.bits.len() {
            self.bits[i] += other.bits[i];
            self.sends[i] += other.sends[i];
        }
        if !other.per_round_bits.is_empty() {
            let need = other.per_round_bits.len() + offset as usize;
            if need > self.per_round_bits.len() {
                self.per_round_bits.resize(need, 0);
                self.per_round_sends.resize(need, 0);
            }
            for (r, &b) in other.per_round_bits.iter().enumerate() {
                if b > 0 {
                    self.per_round_bits[r + offset as usize] += b;
                }
            }
            for (r, &s) in other.per_round_sends.iter().enumerate() {
                if s > 0 {
                    self.per_round_sends[r + offset as usize] += s;
                }
            }
        }
        // The sub-execution's phase spans land after its own in the merged
        // timeline, shifted into the global round numbering. Open spans
        // are closed at the sub-execution's cursor — once absorbed, the
        // other execution is over.
        for span in &other.spans {
            let end = span.end.unwrap_or_else(|| other.cursor.max(span.start));
            self.spans.push(PhaseSpan {
                label: span.label.clone(),
                start: span.start + offset,
                end: Some(end + offset),
            });
        }
        self.cursor = self.cursor.max(other.cursor + offset);
        let shifted_last = other.last_send_round.map(|r| r + offset);
        self.last_send_round = match (self.last_send_round, shifted_last) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Merges another execution's counters into this one (used by the
    /// repetition-based protocols to account several runs as one).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn absorb(&mut self, other: &Metrics) {
        self.absorb_shifted(other, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut m = Metrics::new(3);
        m.record_send(NodeId(0), 1, 10, 2);
        m.record_send(NodeId(1), 1, 4, 1);
        m.record_send(NodeId(0), 3, 6, 1);
        assert_eq!(m.bits_of(NodeId(0)), 16);
        assert_eq!(m.sends_of(NodeId(0)), 3);
        assert_eq!(m.max_bits(), 16);
        assert_eq!(m.bottleneck(), Some(NodeId(0)));
        assert_eq!(m.total_bits(), 20);
        assert!((m.mean_bits() - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.bits_in_rounds(1..=1), 14);
        assert_eq!(m.bits_in_rounds(2..=3), 6);
        assert_eq!(m.last_send_round(), Some(3));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(2);
        assert_eq!(m.max_bits(), 0);
        assert_eq!(m.total_bits(), 0);
        assert_eq!(m.last_send_round(), None);
        assert_eq!(m.bottleneck(), Some(NodeId(0)));
    }

    #[test]
    fn absorb_merges_everything() {
        let mut a = Metrics::new(2);
        a.record_send(NodeId(0), 1, 5, 1);
        let mut b = Metrics::new(2);
        b.record_send(NodeId(1), 4, 7, 2);
        a.absorb(&b);
        assert_eq!(a.bits_of(NodeId(0)), 5);
        assert_eq!(a.bits_of(NodeId(1)), 7);
        assert_eq!(a.sends_of(NodeId(1)), 2);
        assert_eq!(a.last_send_round(), Some(4));
        assert_eq!(a.bits_in_rounds(1..=4), 12);
    }

    #[test]
    fn absorb_shifted_moves_rounds() {
        let mut a = Metrics::new(2);
        a.record_send(NodeId(0), 1, 5, 1);
        let mut b = Metrics::new(2);
        b.record_send(NodeId(1), 3, 7, 1);
        a.absorb_shifted(&b, 100);
        assert_eq!(a.bits_in_rounds(1..=10), 5);
        assert_eq!(a.bits_in_rounds(101..=110), 7);
        assert_eq!(a.last_send_round(), Some(103));
        assert_eq!(a.total_bits(), 12);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn absorb_rejects_mismatch() {
        let mut a = Metrics::new(2);
        let b = Metrics::new(3);
        a.absorb(&b);
    }

    #[test]
    fn phases_attribute_ledger_windows() {
        let mut m = Metrics::new(2);
        assert_eq!(m.enter_phase("AGG"), 1);
        m.record_send(NodeId(0), 1, 10, 1);
        m.record_send(NodeId(1), 3, 6, 2);
        m.exit_phase();
        assert_eq!(m.enter_phase("VERI"), 4);
        m.record_send(NodeId(0), 5, 4, 1);
        m.note_round(6);
        m.exit_phase();
        let ph = m.phases();
        assert_eq!(ph.len(), 2);
        assert_eq!((ph[0].label.as_str(), ph[0].start, ph[0].end), ("AGG", 1, 3));
        assert_eq!((ph[0].bits, ph[0].sends, ph[0].rounds, ph[0].depth), (16, 3, 3, 0));
        assert_eq!((ph[1].label.as_str(), ph[1].start, ph[1].end), ("VERI", 4, 6));
        assert_eq!((ph[1].bits, ph[1].sends, ph[1].rounds, ph[1].depth), (4, 1, 3, 0));
        // Phase bits agree with the window query and sum to the run total.
        assert_eq!(ph[0].bits, m.bits_in_rounds(1..=3));
        assert_eq!(ph[0].bits + ph[1].bits, m.total_bits());
        assert_eq!(m.top_level_phase_bits(), m.total_bits());
    }

    #[test]
    fn nested_phases_report_depth() {
        let mut m = Metrics::new(1);
        m.enter_phase_at("outer", 1);
        m.enter_phase_at("inner", 2);
        m.record_send(NodeId(0), 2, 8, 1);
        m.exit_phase_at(3);
        m.note_round(5);
        m.exit_phase();
        let ph = m.phases();
        assert_eq!((ph[0].label.as_str(), ph[0].depth, ph[0].start, ph[0].end), ("outer", 0, 1, 5));
        assert_eq!((ph[1].label.as_str(), ph[1].depth, ph[1].start, ph[1].end), ("inner", 1, 2, 3));
        assert_eq!(ph[1].bits, 8);
        // Two spans with the identical window: the earlier one encloses.
        let mut eq = Metrics::new(1);
        eq.push_span("a", 1, 4);
        eq.push_span("b", 1, 4);
        let ph = eq.phases();
        assert_eq!(ph[0].depth, 0);
        assert_eq!(ph[1].depth, 1);
    }

    #[test]
    fn open_phases_clamp_to_cursor() {
        let mut m = Metrics::new(1);
        m.enter_phase("run");
        m.record_send(NodeId(0), 4, 3, 1);
        let ph = m.phases();
        assert_eq!((ph[0].start, ph[0].end), (1, 4));
        // An empty phase spans exactly its start round even if closed early.
        let mut e = Metrics::new(1);
        e.note_round(7);
        e.enter_phase("empty");
        let closed = e.exit_phase_at(2).unwrap();
        assert_eq!(closed, ("empty".to_string(), 8));
        assert_eq!(e.phases()[0].rounds, 1);
        assert!(e.exit_phase().is_none());
    }

    #[test]
    fn absorb_shifted_shifts_spans_and_closes_open_ones() {
        let mut sub = Metrics::new(2);
        sub.enter_phase("AGG");
        sub.record_send(NodeId(0), 1, 5, 1);
        sub.exit_phase();
        sub.enter_phase("VERI");
        sub.record_send(NodeId(1), 3, 2, 1);
        // VERI left open: absorbing closes it at the sub-run's cursor.
        let mut top = Metrics::new(2);
        top.push_span("interval 1", 101, 110);
        top.absorb_shifted(&sub, 100);
        let ph = top.phases();
        assert_eq!(ph.len(), 3);
        assert_eq!((ph[0].label.as_str(), ph[0].depth), ("interval 1", 0));
        assert_eq!(
            (ph[1].label.as_str(), ph[1].start, ph[1].end, ph[1].depth),
            ("AGG", 101, 101, 1)
        );
        assert_eq!(
            (ph[2].label.as_str(), ph[2].start, ph[2].end, ph[2].depth),
            ("VERI", 102, 103, 1)
        );
        assert_eq!(ph[1].bits, 5);
        assert_eq!(ph[2].bits, 2);
        assert_eq!(top.sends_in_rounds(101..=103), 2);
        // push_span already advanced the cursor to the interval's end.
        assert_eq!(top.current_round(), 110);
    }
}
