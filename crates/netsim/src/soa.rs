//! Struct-of-arrays round engine for large `N`.
//!
//! [`SoaEngine`] executes exactly the same synchronous model as the
//! classic [`Engine`] — byte-identical traces, metrics, telemetry counts
//! and decisions, pinned by `tests/engine_equivalence.rs` — but with a
//! data layout built for millions of nodes:
//!
//! - **CSR inboxes**: one offsets array plus parallel `from`/`midx`
//!   columns instead of a million little `Vec`s, rebuilt in place each
//!   round by a counting-sort scatter (two O(N + deliveries) passes).
//! - **Message arena**: each round's payloads live in one `Vec<M>`; a
//!   broadcast stores its message once and every recipient's inbox entry
//!   is a `u32` index into the arena — no per-message `Rc`, no per-message
//!   allocation, and the arena double-buffers across rounds.
//! - **Streaming per-round metrics**: [`SoaEngine::stream_rounds`] hands a
//!   [`RoundFlow`] row to a callback as each round retires, and
//!   [`Metrics::lean`] drops the per-round ledger entirely, so a
//!   million-node sweep never materializes per-round history it will not
//!   read.
//!
//! The scatter preserves the classic engine's delivery order — ascending
//! sender id, then the sender's send order — because sends are recorded in
//! node order during the round and replayed in that order into each
//! receiver's CSR window. That ordering is the only thing protocol logic
//! can observe, which is what makes the two engines bit-equivalent.
//!
//! [`AnyEngine`] dispatches between the two implementations behind one
//! enum so drivers pick an engine per [`EngineKind`] without an API break,
//! and [`BitFlood`] is a bit-packed lane for flood-style workloads where a
//! message is just "token `t` exists": per-node seen/frontier bitsets and
//! word-parallel OR replace per-message work entirely.

use crate::adversary::{FailureSchedule, Round};
use crate::engine::{
    Engine, EngineKind, InboxRef, Message, NodeLogic, RoundCtx, RunReport, StopCause, Telemetry,
};
use crate::graph::{Graph, NodeId};
use crate::metrics::Metrics;
use crate::trace::{Event, EventId, Trace, TraceSink};
use std::time::{Duration, Instant};

/// One executed round's traffic, streamed to a
/// [`SoaEngine::stream_rounds`] callback as the round retires. The whole
/// point is that a million-node run can aggregate these without the engine
/// keeping per-round history alive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundFlow {
    /// The (1-based) round this row describes.
    pub round: Round,
    /// System-wide bits broadcast this round.
    pub bits: u64,
    /// System-wide logical messages broadcast this round.
    pub logical: u64,
    /// Deliveries enqueued by this round's broadcasts (one per recipient
    /// per logical message).
    pub deliveries: u64,
}

/// One node's deferred broadcast: a window `[lo, hi)` of this round's
/// arena, scattered to the sender's live neighbors after the node loop.
#[derive(Clone, Copy, Debug)]
struct SendRec {
    sender: u32,
    lo: u32,
    hi: u32,
}

/// The struct-of-arrays synchronous network simulator (see the module
/// docs). Drop-in equivalent of the classic [`Engine`]; protocol logic
/// sees the identical [`RoundCtx`] API.
pub struct SoaEngine<M: Message, L: NodeLogic<M>> {
    graph: Graph,
    schedule: FailureSchedule,
    nodes: Vec<L>,
    /// CSR offsets of the inbox consumed this round: node `i`'s deliveries
    /// are entries `cur_off[i]..cur_off[i + 1]`.
    cur_off: Vec<u32>,
    /// Sender column of the consumed CSR.
    cur_from: Vec<NodeId>,
    /// Arena-index column of the consumed CSR (into `cur_arena`).
    cur_midx: Vec<u32>,
    /// Producing-`Send` event ids, parallel to `cur_from`; populated only
    /// while a sink is installed (empty → deliveries report
    /// [`EventId::NONE`]).
    cur_src: Vec<EventId>,
    /// Payloads of the messages consumed this round.
    cur_arena: Vec<M>,
    /// Payloads broadcast this round (consumed next round); swapped with
    /// `cur_arena` at the round boundary so allocations amortize to zero.
    pend_arena: Vec<M>,
    /// Per-message send event ids, parallel to `pend_arena` (tracing only).
    pend_src: Vec<EventId>,
    /// This round's broadcasts, in node order (= ascending sender id).
    sends: Vec<SendRec>,
    /// Scratch: per-receiver entry counts, then write cursors, for the
    /// counting-sort scatter.
    counts: Vec<u32>,
    /// Reusable outbox scratch handed to each node's [`RoundCtx`].
    outbox: Vec<M>,
    /// First round each node is dead (`Round::MAX` if it never crashes).
    crash_round: Vec<Round>,
    /// Sorted receiver restriction of each node's final broadcast, for
    /// partial crashes.
    partial_rx: Vec<Option<Vec<NodeId>>>,
    crash_logged: Vec<bool>,
    round: Round,
    metrics: Metrics,
    stop_requested: bool,
    sink: Option<Box<dyn TraceSink>>,
    telemetry: Telemetry,
    /// Wall-clock starts of currently open phases (innermost last).
    phase_started: Vec<(String, Instant)>,
    /// Last assigned [`EventId`]; only advances while a sink is installed.
    next_event_id: u64,
    /// Scratch: trace ids of the current node's deliveries this round.
    delivery_ids: Vec<EventId>,
    /// Scratch: trace ids of the current node's outbox messages.
    send_ids: Vec<EventId>,
    /// Scratch: causal dependencies declared via
    /// [`RoundCtx::send_caused_by`] this round.
    causes: Vec<EventId>,
    /// Scratch: per-kind accumulation of one node's outbox
    /// (kind, bits, logical, event id).
    kind_acc: Vec<(&'static str, u64, u64, EventId)>,
    /// Per-round flow observer, if any (see [`SoaEngine::stream_rounds`]).
    round_stream: Option<Box<dyn FnMut(RoundFlow)>>,
    /// Cached [`TraceSink::wants_delivers`] of the installed sink,
    /// refreshed at [`SoaEngine::set_sink`]. `true` while no sink is
    /// installed.
    deliver_interest: bool,
    /// Wall-clock profiler handle and lane, if installed (see
    /// [`SoaEngine::set_timeline`]); `None` keeps the hot path at one
    /// branch per round.
    timeline: Option<(crate::timeline::Timeline, u32)>,
}

impl<M: Message, L: NodeLogic<M>> SoaEngine<M, L> {
    /// Creates an engine over `graph` with the given oblivious `schedule`,
    /// instantiating each node's logic with `factory`.
    pub fn new(
        graph: Graph,
        schedule: FailureSchedule,
        mut factory: impl FnMut(NodeId) -> L,
    ) -> Self {
        let n = graph.len();
        let nodes = (0..n as u32).map(|i| factory(NodeId(i))).collect();
        let mut crash_round = vec![Round::MAX; n];
        let mut partial_rx: Vec<Option<Vec<NodeId>>> = vec![None; n];
        for (v, e) in schedule.iter() {
            if v.index() >= n {
                continue; // out-of-range crashes can never take effect
            }
            crash_round[v.index()] = e.round;
            partial_rx[v.index()] = e.partial.as_ref().map(|rx| {
                let mut rx = rx.clone();
                rx.sort_unstable();
                rx
            });
        }
        SoaEngine {
            metrics: Metrics::new(n),
            cur_off: vec![0; n + 1],
            cur_from: Vec::new(),
            cur_midx: Vec::new(),
            cur_src: Vec::new(),
            cur_arena: Vec::new(),
            pend_arena: Vec::new(),
            pend_src: Vec::new(),
            sends: Vec::new(),
            counts: vec![0; n],
            outbox: Vec::new(),
            crash_round,
            partial_rx,
            crash_logged: vec![false; n],
            graph,
            schedule,
            nodes,
            round: 0,
            stop_requested: false,
            sink: None,
            telemetry: Telemetry::default(),
            phase_started: Vec::new(),
            next_event_id: 0,
            delivery_ids: Vec::new(),
            send_ids: Vec::new(),
            causes: Vec::new(),
            kind_acc: Vec::new(),
            round_stream: None,
            deliver_interest: true,
            timeline: None,
        }
    }

    /// Installs a wall-clock [`crate::timeline::Timeline`] recording
    /// round/stage/phase spans on `lane` (see [`Engine::set_timeline`]
    /// — the semantics are identical).
    pub fn set_timeline(&mut self, tl: &crate::timeline::Timeline, lane: u32) -> &mut Self {
        self.timeline = Some((tl.clone(), lane));
        self
    }

    /// Replaces the metrics with a [`Metrics::lean`] instance that skips
    /// the per-round ledger (per-node totals and CC stay exact); call
    /// before the first step. Pair with [`SoaEngine::stream_rounds`] when
    /// per-round rows are still wanted, just not materialized.
    pub fn use_lean_metrics(&mut self) -> &mut Self {
        self.metrics = Metrics::lean(self.graph.len());
        self
    }

    /// Installs a per-round flow observer: `cb` receives one [`RoundFlow`]
    /// as each round retires. Purely observational — the callback sees
    /// copies of counters the engine maintains anyway, so installing one
    /// never perturbs the execution.
    pub fn stream_rounds(&mut self, cb: impl FnMut(RoundFlow) + 'static) -> &mut Self {
        self.round_stream = Some(Box::new(cb));
        self
    }

    /// Turns on event tracing into an in-memory [`Trace`]; call before the
    /// first step. Shorthand for `set_sink(Box::new(Trace::new()))`.
    pub fn enable_trace(&mut self) -> &mut Self {
        self.set_sink(Box::new(Trace::new()))
    }

    /// Installs an event sink; call before the first step. Replaces any
    /// previously installed sink.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) -> &mut Self {
        // Delivery interest is sampled once per installation: at N = 2²⁰
        // deliveries dominate event volume, and a sink that does not want
        // them (e.g. a flight recorder) lets the engine skip building
        // them — and the src-id column — entirely.
        self.deliver_interest = sink.wants_delivers();
        self.sink = Some(sink);
        self
    }

    /// Removes and returns the installed sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.deliver_interest = true;
        self.sink.take()
    }

    /// The installed sink, if any.
    pub fn sink_mut(&mut self) -> Option<&mut dyn TraceSink> {
        self.sink.as_deref_mut()
    }

    /// The trace, if the installed sink is the in-memory [`Trace`].
    pub fn trace(&self) -> Option<&Trace> {
        self.sink.as_ref().and_then(|s| s.as_any().downcast_ref::<Trace>())
    }

    /// Feeds a harness-level event to the installed sink, if any.
    pub fn annotate(&mut self, e: Event) {
        debug_assert!(e.round() >= self.round, "annotation would violate round order");
        if let Some(s) = self.sink.as_deref_mut() {
            s.record(&e);
        }
    }

    /// Opens a phase on this engine's [`Metrics`] starting at the next
    /// round, mirroring [`Event::PhaseEnter`] to the sink. Returns the
    /// phase's start round.
    pub fn enter_phase(&mut self, label: &str) -> Round {
        let start = self.metrics.enter_phase(label);
        self.phase_started.push((label.to_string(), Instant::now()));
        self.annotate(Event::PhaseEnter { round: start, label: label.to_string() });
        start
    }

    /// Closes the innermost open phase at the current round, mirroring
    /// [`Event::PhaseExit`] to the sink.
    pub fn exit_phase(&mut self) -> Option<(String, Round)> {
        let round = self.round;
        let (label, end) = self.metrics.exit_phase_at(round)?;
        if let Some((started_label, t0)) = self.phase_started.pop() {
            if let Some((tl, lane)) = &self.timeline {
                let dur = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                tl.record_span(
                    crate::timeline::SpanKind::Phase,
                    &started_label,
                    *lane,
                    tl.ns_of(t0),
                    dur,
                    None,
                );
            }
            self.telemetry.phase_wall.push((started_label, t0.elapsed()));
        }
        self.annotate(Event::PhaseExit { round: end, label: label.clone() });
        Some((label, end))
    }

    /// Host-side performance counters accumulated so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The failure schedule.
    pub fn schedule(&self) -> &FailureSchedule {
        &self.schedule
    }

    /// Communication metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The last executed round (0 before the first step).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Immutable access to a node's logic.
    pub fn node(&self, v: NodeId) -> &L {
        &self.nodes[v.index()]
    }

    /// Mutable access to a node's logic.
    pub fn node_mut(&mut self, v: NodeId) -> &mut L {
        &mut self.nodes[v.index()]
    }

    /// Executes one round. Returns `false` once a stop has been requested
    /// (further calls do nothing). Mirrors the classic engine's step
    /// exactly — event order, event id assignment, metrics and telemetry
    /// are bit-identical.
    pub fn step(&mut self) -> bool {
        if self.stop_requested {
            return false;
        }
        let r = self.round + 1;
        let n = self.graph.len();
        let mut stop = false;
        let mut clock = self.timeline.as_ref().map(|(t, _)| t.round_clock());
        let SoaEngine {
            graph,
            nodes,
            cur_off,
            cur_from,
            cur_midx,
            cur_src,
            cur_arena,
            pend_arena,
            pend_src,
            sends,
            counts,
            outbox,
            crash_round,
            partial_rx,
            crash_logged,
            metrics,
            sink,
            telemetry,
            next_event_id,
            delivery_ids,
            send_ids,
            causes,
            kind_acc,
            round_stream,
            deliver_interest,
            timeline,
            ..
        } = self;
        // `tracing` gates only the per-delivery work (Deliver events and
        // the src-id column); sends/crashes/phases still reach a sink
        // that declined deliveries.
        let tracing = sink.is_some() && *deliver_interest;
        // Stage attribution granularity: with a sink installed the loop
        // already pays per-delivery encoding costs, so per-node clock
        // reads (2–3 per live node) disappear into them and buy exact
        // trace/absorb/send splits. Without a sink the whole node loop
        // is charged to `absorb` in one read — per-node reads would
        // dominate idle nodes at N = 2²⁰ and sink the <5% overhead
        // budget.
        let fine = clock.is_some() && sink.is_some();
        metrics.note_round(r);
        telemetry.rounds += 1;
        sends.clear();
        pend_arena.clear();
        pend_src.clear();
        if let Some(c) = clock.as_mut() {
            c.mark(crate::timeline::STAGE_SCATTER);
        }
        let mut round_bits: u64 = 0;
        let mut round_logical: u64 = 0;
        for i in 0..n {
            let me = NodeId(i as u32);
            if r >= crash_round[i] {
                if !crash_logged[i] {
                    crash_logged[i] = true;
                    if let Some(t) = sink.as_deref_mut() {
                        t.record(&Event::Crash { round: r, node: me });
                    }
                }
                continue;
            }
            let lo = cur_off[i] as usize;
            let hi = cur_off[i + 1] as usize;
            delivery_ids.clear();
            if let (true, Some(t)) = (tracing, sink.as_deref_mut()) {
                // Deliveries are logged when the node consumes its inbox
                // (this round), keeping the event log round-ordered. Each
                // gets a fresh id and points back at the producing send.
                for j in lo..hi {
                    *next_event_id += 1;
                    let id = EventId(*next_event_id);
                    delivery_ids.push(id);
                    t.record(&Event::Deliver {
                        round: r,
                        node: me,
                        from: cur_from[j],
                        bits: cur_arena[cur_midx[j] as usize].bit_len(),
                        id,
                        // NONE for deliveries enqueued before the sink
                        // was installed (src column left empty).
                        src: cur_src.get(j).copied().unwrap_or(EventId::NONE),
                    });
                }
                if fine {
                    if let Some(c) = clock.as_mut() {
                        c.mark(crate::timeline::STAGE_TRACE);
                    }
                }
            }
            outbox.clear();
            causes.clear();
            {
                let mut ctx = RoundCtx::assemble(
                    me,
                    n,
                    r,
                    InboxRef::Soa {
                        from: &cur_from[lo..hi],
                        midx: &cur_midx[lo..hi],
                        arena: cur_arena,
                    },
                    &mut *outbox,
                    &mut stop,
                    &*delivery_ids,
                    &mut *causes,
                );
                nodes[i].on_round(&mut ctx);
            }
            if fine {
                if let Some(c) = clock.as_mut() {
                    c.mark(crate::timeline::STAGE_ABSORB);
                }
            }
            if outbox.is_empty() {
                continue;
            }
            let bits: u64 = outbox.iter().map(Message::bit_len).sum();
            metrics.record_send(me, r, bits, outbox.len() as u64);
            round_bits += bits;
            round_logical += outbox.len() as u64;
            send_ids.clear();
            if let Some(t) = sink.as_deref_mut() {
                // Group the outbox by message kind and emit one Send event
                // per kind, exactly as the classic engine does.
                kind_acc.clear();
                for m in outbox.iter() {
                    let k = m.kind();
                    let slot = match kind_acc.iter().position(|g| g.0 == k) {
                        Some(p) => p,
                        None => {
                            *next_event_id += 1;
                            kind_acc.push((k, 0, 0, EventId(*next_event_id)));
                            kind_acc.len() - 1
                        }
                    };
                    kind_acc[slot].1 += m.bit_len();
                    kind_acc[slot].2 += 1;
                    if tracing {
                        // The per-message id column only feeds the
                        // delivery-side src pointers, which a deaf sink
                        // never sees.
                        send_ids.push(kind_acc[slot].3);
                    }
                }
                for &(k, kind_bits, logical, id) in kind_acc.iter() {
                    t.record(&Event::Send {
                        round: r,
                        node: me,
                        bits: kind_bits,
                        logical,
                        id,
                        kind: k.to_string(),
                        causes: causes.clone(),
                    });
                }
            }
            // Defer delivery: move the outbox into the round arena and
            // remember the window; the scatter below reproduces the
            // classic per-receiver order (ascending sender, send order).
            let win_lo = pend_arena.len() as u32;
            pend_arena.append(outbox);
            let win_hi = pend_arena.len() as u32;
            if tracing {
                for mi in 0..(win_hi - win_lo) as usize {
                    pend_src.push(send_ids.get(mi).copied().unwrap_or(EventId::NONE));
                }
            }
            sends.push(SendRec { sender: i as u32, lo: win_lo, hi: win_hi });
            if fine {
                if let Some(c) = clock.as_mut() {
                    c.mark(crate::timeline::STAGE_SEND);
                }
            }
        }
        if !fine {
            if let Some(c) = clock.as_mut() {
                c.mark(crate::timeline::STAGE_ABSORB);
            }
        }
        // ---- Delivery build: counting-sort scatter into the (now dead)
        // consumed CSR, giving next round's inboxes in O(N + deliveries).
        let mut enqueued: u64 = 0;
        if sends.is_empty() {
            cur_off.iter_mut().for_each(|o| *o = 0);
            cur_from.clear();
            cur_midx.clear();
            cur_src.clear();
        } else {
            counts.iter_mut().for_each(|c| *c = 0);
            // Pass 1: how many entries each receiver gets. A sender
            // crashing exactly at r + 1 may have its final broadcast
            // restricted to a subset, and dead receivers hear nothing —
            // the same predicates the classic engine applies per send.
            for s in sends.iter() {
                let si = s.sender as usize;
                let msgs = u64::from(s.hi - s.lo);
                let restriction: Option<&[NodeId]> =
                    if crash_round[si] == r + 1 { partial_rx[si].as_deref() } else { None };
                for &w in graph.neighbors(NodeId(s.sender)) {
                    if r + 1 >= crash_round[w.index()] {
                        continue;
                    }
                    if let Some(rx) = restriction {
                        if rx.binary_search(&w).is_err() {
                            continue;
                        }
                    }
                    counts[w.index()] += s.hi - s.lo;
                    enqueued += msgs;
                }
            }
            // Prefix-sum into offsets; `counts` becomes the write cursors.
            cur_off[0] = 0;
            for i in 0..n {
                let next = cur_off[i]
                    .checked_add(counts[i])
                    .expect("round delivery volume exceeds u32 CSR capacity");
                cur_off[i + 1] = next;
                counts[i] = cur_off[i];
            }
            let total = cur_off[n] as usize;
            cur_from.clear();
            cur_from.resize(total, NodeId(0));
            cur_midx.clear();
            cur_midx.resize(total, 0);
            cur_src.clear();
            if tracing {
                cur_src.resize(total, EventId::NONE);
            }
            // Pass 2: scatter. Senders are visited in ascending id order
            // and each window in send order, so every receiver's slice
            // comes out in the classic engine's delivery order.
            for s in sends.iter() {
                let si = s.sender as usize;
                let restriction: Option<&[NodeId]> =
                    if crash_round[si] == r + 1 { partial_rx[si].as_deref() } else { None };
                for &w in graph.neighbors(NodeId(s.sender)) {
                    if r + 1 >= crash_round[w.index()] {
                        continue;
                    }
                    if let Some(rx) = restriction {
                        if rx.binary_search(&w).is_err() {
                            continue;
                        }
                    }
                    let wi = w.index();
                    let mut pos = counts[wi] as usize;
                    for mi in s.lo..s.hi {
                        cur_from[pos] = NodeId(s.sender);
                        cur_midx[pos] = mi;
                        if tracing {
                            cur_src[pos] = pend_src[mi as usize];
                        }
                        pos += 1;
                    }
                    counts[wi] = pos as u32;
                }
            }
        }
        // The round's payloads become next round's arena; the old arena's
        // allocation is recycled for the round after.
        std::mem::swap(cur_arena, pend_arena);
        if let Some(c) = clock.as_mut() {
            c.mark(crate::timeline::STAGE_SCATTER);
        }
        telemetry.deliveries += enqueued;
        telemetry.peak_inflight = telemetry.peak_inflight.max(enqueued);
        if let Some(cb) = round_stream.as_deref_mut() {
            cb(RoundFlow {
                round: r,
                bits: round_bits,
                logical: round_logical,
                deliveries: enqueued,
            });
        }
        if let Some(mut c) = clock {
            c.mark(crate::timeline::STAGE_TELEMETRY);
            if let Some((tl, lane)) = timeline.as_ref() {
                tl.push_round(r, *lane, c);
            }
        }
        self.round = r;
        if stop {
            self.stop_requested = true;
        }
        true
    }

    /// Runs until a stop is requested or `max_rounds` rounds have executed.
    pub fn run(&mut self, max_rounds: Round) -> RunReport {
        let t0 = Instant::now();
        let report = loop {
            if self.round >= max_rounds {
                break RunReport { rounds: self.round, cause: StopCause::RoundLimit };
            }
            self.step();
            if self.stop_requested {
                break RunReport { rounds: self.round, cause: StopCause::Requested };
            }
        };
        self.telemetry.busy += t0.elapsed();
        report
    }

    /// Nodes alive at round `round` *and* connected to `root` in the
    /// residual graph.
    pub fn alive_connected(&self, root: NodeId, round: Round) -> Vec<NodeId> {
        let dead = self.schedule.dead_by(round);
        self.graph.reachable_from(root, &dead)
    }
}

macro_rules! on_engine {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            AnyEngine::Classic($e) => $body,
            AnyEngine::Soa($e) => $body,
        }
    };
}

/// Engine dispatch: the classic [`Engine`] or the [`SoaEngine`], selected
/// by [`EngineKind`] at construction. Drivers hold an `AnyEngine` and call
/// the shared surface; both variants execute the model identically, so
/// switching kinds never changes an outcome.
pub enum AnyEngine<M: Message, L: NodeLogic<M>> {
    /// The classic per-message `Rc` engine.
    Classic(Engine<M, L>),
    /// The struct-of-arrays engine.
    Soa(SoaEngine<M, L>),
}

impl<M: Message, L: NodeLogic<M>> AnyEngine<M, L> {
    /// Creates an engine of the given kind (see [`Engine::new`] /
    /// [`SoaEngine::new`] for the shared semantics).
    pub fn new(
        kind: EngineKind,
        graph: Graph,
        schedule: FailureSchedule,
        factory: impl FnMut(NodeId) -> L,
    ) -> Self {
        match kind {
            EngineKind::Classic => AnyEngine::Classic(Engine::new(graph, schedule, factory)),
            EngineKind::Soa => AnyEngine::Soa(SoaEngine::new(graph, schedule, factory)),
        }
    }

    /// Which implementation this is.
    pub fn kind(&self) -> EngineKind {
        match self {
            AnyEngine::Classic(_) => EngineKind::Classic,
            AnyEngine::Soa(_) => EngineKind::Soa,
        }
    }

    /// Turns on event tracing into an in-memory [`Trace`].
    pub fn enable_trace(&mut self) -> &mut Self {
        on_engine!(self, e => { e.enable_trace(); });
        self
    }

    /// Switches to lean [`Metrics`] (see [`SoaEngine::use_lean_metrics`]).
    pub fn use_lean_metrics(&mut self) -> &mut Self {
        on_engine!(self, e => { e.use_lean_metrics(); });
        self
    }

    /// Installs a per-round flow observer (see
    /// [`SoaEngine::stream_rounds`]).
    pub fn stream_rounds(&mut self, cb: impl FnMut(RoundFlow) + 'static) -> &mut Self {
        let boxed: Box<dyn FnMut(RoundFlow)> = Box::new(cb);
        on_engine!(self, e => { e.stream_rounds(boxed); });
        self
    }

    /// Installs an event sink; call before the first step.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) -> &mut Self {
        on_engine!(self, e => { e.set_sink(sink); });
        self
    }

    /// Installs a wall-clock profiler (see [`Engine::set_timeline`]).
    pub fn set_timeline(&mut self, tl: &crate::timeline::Timeline, lane: u32) -> &mut Self {
        on_engine!(self, e => { e.set_timeline(tl, lane); });
        self
    }

    /// Removes and returns the installed sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        on_engine!(self, e => e.take_sink())
    }

    /// The installed sink, if any.
    pub fn sink_mut(&mut self) -> Option<&mut dyn TraceSink> {
        on_engine!(self, e => e.sink_mut())
    }

    /// The trace, if the installed sink is the in-memory [`Trace`].
    pub fn trace(&self) -> Option<&Trace> {
        on_engine!(self, e => e.trace())
    }

    /// Feeds a harness-level event to the installed sink, if any.
    pub fn annotate(&mut self, e: Event) {
        on_engine!(self, eng => eng.annotate(e))
    }

    /// Opens a phase (see [`Engine::enter_phase`]).
    pub fn enter_phase(&mut self, label: &str) -> Round {
        on_engine!(self, e => e.enter_phase(label))
    }

    /// Closes the innermost open phase (see [`Engine::exit_phase`]).
    pub fn exit_phase(&mut self) -> Option<(String, Round)> {
        on_engine!(self, e => e.exit_phase())
    }

    /// Host-side performance counters accumulated so far.
    pub fn telemetry(&self) -> &Telemetry {
        on_engine!(self, e => e.telemetry())
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        on_engine!(self, e => e.graph())
    }

    /// The failure schedule.
    pub fn schedule(&self) -> &FailureSchedule {
        on_engine!(self, e => e.schedule())
    }

    /// Communication metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        on_engine!(self, e => e.metrics())
    }

    /// The last executed round (0 before the first step).
    pub fn round(&self) -> Round {
        on_engine!(self, e => e.round())
    }

    /// Immutable access to a node's logic.
    pub fn node(&self, v: NodeId) -> &L {
        on_engine!(self, e => e.node(v))
    }

    /// Mutable access to a node's logic.
    pub fn node_mut(&mut self, v: NodeId) -> &mut L {
        on_engine!(self, e => e.node_mut(v))
    }

    /// Executes one round (see [`Engine::step`]).
    pub fn step(&mut self) -> bool {
        on_engine!(self, e => e.step())
    }

    /// Runs until a stop is requested or `max_rounds` rounds have executed.
    pub fn run(&mut self, max_rounds: Round) -> RunReport {
        on_engine!(self, e => e.run(max_rounds))
    }

    /// Nodes alive at round `round` and connected to `root`.
    pub fn alive_connected(&self, root: NodeId, round: Round) -> Vec<NodeId> {
        on_engine!(self, e => e.alive_connected(root, round))
    }
}

/// Summary of a finished [`BitFlood`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BitFloodReport {
    /// Rounds stepped (the lane stops early once no frontier bit is set).
    pub rounds: Round,
    /// Logical deliveries (one per recipient per token), counted exactly
    /// as the generic engine's `Telemetry::deliveries`.
    pub deliveries: u64,
    /// System-wide bits broadcast (`bits_per_token` per forwarded token).
    pub total_bits: u64,
    /// The paper's CC: maximum bits over nodes.
    pub max_bits: u64,
    /// Wall-clock time inside [`BitFlood::run`].
    pub busy: Duration,
}

impl BitFloodReport {
    /// Deliveries per second of busy time (0 if no busy time recorded).
    pub fn deliveries_per_sec(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s > 0.0 {
            self.deliveries as f64 / s
        } else {
            0.0
        }
    }
}

/// Bit-packed flood lane: executes the standard "every origin floods its
/// token, nodes forward each token on first sighting" workload with
/// per-node bitsets instead of per-message inboxes.
///
/// Token `t` is origin node `t`'s id; a node's round state is two bitsets
/// over the token space — `seen` (ever sighted) and `frontier` (first
/// sighted last round, i.e. what it broadcasts). Delivery is a
/// word-parallel OR along each live edge and the per-round new-token set
/// is `incoming & !seen`, so a round costs O(E · N/64) words instead of
/// O(deliveries) message operations.
///
/// The counters mirror the generic engine running the equivalent
/// per-message flooder exactly (same crash/partial-crash predicates, same
/// delivery counting; pinned by `prop_soa.rs`): `deliveries` counts one
/// per recipient per token and each forwarded token charges
/// `bits_per_token` to its sender.
pub struct BitFlood {
    graph: Graph,
    crash_round: Vec<Round>,
    partial_rx: Vec<Option<Vec<NodeId>>>,
    /// Words per node: `ceil(n / 64)` over the token space.
    words: usize,
    /// `seen[v * words ..][..words]`: tokens node `v` has ever sighted.
    seen: Vec<u64>,
    /// Tokens first sighted by `v` in the round just executed — exactly
    /// what `v` broadcast that round.
    frontier: Vec<u64>,
    /// OR of the frontiers delivered to `v`, consumed next round.
    incoming: Vec<u64>,
    /// Per-node bits broadcast (the flood lane's `Metrics::bits_of`).
    bits: Vec<u64>,
    bits_per_token: u64,
    round: Round,
    deliveries: u64,
    quiescent: bool,
}

impl BitFlood {
    /// A flood lane over `graph` under `schedule`, where every node in
    /// `origins` injects its own token in round 1. `bits_per_token` is the
    /// metered size of one forwarded token.
    pub fn new(
        graph: Graph,
        schedule: &FailureSchedule,
        origins: &[NodeId],
        bits_per_token: u64,
    ) -> Self {
        let n = graph.len();
        let words = n.div_ceil(64);
        let mut crash_round = vec![Round::MAX; n];
        let mut partial_rx: Vec<Option<Vec<NodeId>>> = vec![None; n];
        for (v, e) in schedule.iter() {
            if v.index() >= n {
                continue;
            }
            crash_round[v.index()] = e.round;
            partial_rx[v.index()] = e.partial.as_ref().map(|rx| {
                let mut rx = rx.clone();
                rx.sort_unstable();
                rx
            });
        }
        let mut seen = vec![0u64; n * words];
        // Round 1 is the injection round: each live origin marks its own
        // token seen and broadcasts it (the generic flooder's round-1 arm).
        let mut injected = vec![0u64; n * words];
        for &o in origins {
            if o.index() < n && crash_round[o.index()] > 1 {
                let bit = o.index();
                injected[o.index() * words + bit / 64] |= 1u64 << (bit % 64);
                seen[o.index() * words + bit / 64] |= 1u64 << (bit % 64);
            }
        }
        BitFlood {
            crash_round,
            partial_rx,
            words,
            seen,
            frontier: injected,
            incoming: vec![0u64; n * words],
            bits: vec![0; n],
            bits_per_token,
            graph,
            round: 0,
            deliveries: 0,
            quiescent: false,
        }
    }

    /// Executes one round. Returns `false` once the flood is quiescent (no
    /// node has anything left to broadcast — no further round can change
    /// any state or counter).
    pub fn step(&mut self) -> bool {
        if self.quiescent {
            return false;
        }
        let r = self.round + 1;
        let n = self.graph.len();
        let words = self.words;
        // Consume: tokens delivered last round that are new to each live
        // node become its broadcast frontier (skipped in round 1, where
        // the frontier holds the injected origin tokens instead).
        if r > 1 {
            for i in 0..n {
                let base = i * words;
                if r >= self.crash_round[i] {
                    // Dead nodes consume nothing; drop what was queued.
                    self.incoming[base..base + words].iter_mut().for_each(|w| *w = 0);
                    self.frontier[base..base + words].iter_mut().for_each(|w| *w = 0);
                    continue;
                }
                for k in 0..words {
                    let inc = self.incoming[base + k];
                    let new = inc & !self.seen[base + k];
                    self.seen[base + k] |= inc;
                    self.frontier[base + k] = new;
                    self.incoming[base + k] = 0;
                }
            }
        }
        // Broadcast: word-parallel OR of each live sender's frontier into
        // every eligible receiver, with the engine's exact crash and
        // partial-restriction predicates and delivery counting.
        let mut any = false;
        for i in 0..n {
            if r >= self.crash_round[i] {
                continue;
            }
            let base = i * words;
            let tokens: u32 =
                self.frontier[base..base + words].iter().map(|w| w.count_ones()).sum();
            if tokens == 0 {
                continue;
            }
            any = true;
            self.bits[i] += self.bits_per_token * u64::from(tokens);
            let restriction: Option<&[NodeId]> =
                if self.crash_round[i] == r + 1 { self.partial_rx[i].as_deref() } else { None };
            for &w in self.graph.neighbors(NodeId(i as u32)) {
                if r + 1 >= self.crash_round[w.index()] {
                    continue;
                }
                if let Some(rx) = restriction {
                    if rx.binary_search(&w).is_err() {
                        continue;
                    }
                }
                let wbase = w.index() * words;
                for k in 0..words {
                    self.incoming[wbase + k] |= self.frontier[base + k];
                }
                self.deliveries += u64::from(tokens);
            }
        }
        self.round = r;
        if !any {
            self.quiescent = true;
        }
        true
    }

    /// Runs until quiescent or `max_rounds` rounds have executed.
    pub fn run(&mut self, max_rounds: Round) -> BitFloodReport {
        let t0 = Instant::now();
        while self.round < max_rounds && self.step() {}
        BitFloodReport {
            rounds: self.round,
            deliveries: self.deliveries,
            total_bits: self.bits.iter().sum(),
            max_bits: self.bits.iter().copied().max().unwrap_or(0),
            busy: t0.elapsed(),
        }
    }

    /// The last executed round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Deliveries counted so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Bits broadcast by `v` so far.
    pub fn bits_of(&self, v: NodeId) -> u64 {
        self.bits[v.index()]
    }

    /// The tokens node `v` has sighted, ascending — the dense flooder's
    /// seen-set, decoded from the bitset.
    pub fn seen_tokens(&self, v: NodeId) -> Vec<NodeId> {
        let base = v.index() * self.words;
        let mut out = Vec::new();
        for k in 0..self.words {
            let mut w = self.seen[base + k];
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push(NodeId((k * 64 + b) as u32));
                w &= w - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::FloodState;
    use crate::topology;

    #[derive(Clone, Debug)]
    struct Blob(u64);
    impl Message for Blob {
        fn bit_len(&self) -> u64 {
            8
        }
        fn kind(&self) -> &'static str {
            "blob"
        }
    }

    /// Sends its id+round in the first two rounds; remembers everything.
    struct Chatter {
        me: u32,
        heard: Vec<(Round, NodeId, u64)>,
    }

    impl NodeLogic<Blob> for Chatter {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Blob>) {
            for rcv in ctx.inbox() {
                self.heard.push((ctx.round(), rcv.from, rcv.msg.0));
            }
            if ctx.round() <= 2 {
                ctx.send(Blob(u64::from(self.me) * 10 + ctx.round()));
            }
        }
    }

    fn crashy_schedule() -> FailureSchedule {
        let mut s = FailureSchedule::none();
        s.crash(NodeId(2), 3);
        s.crash_partial(NodeId(4), 2, vec![NodeId(3)]);
        s
    }

    #[test]
    fn soa_matches_classic_heard_streams_metrics_and_trace() {
        let build_classic = || {
            let mut e = Engine::new(topology::grid(3, 2), crashy_schedule(), |v| Chatter {
                me: v.0,
                heard: Vec::new(),
            });
            e.enable_trace();
            e.run(5);
            e
        };
        let mut soa = SoaEngine::new(topology::grid(3, 2), crashy_schedule(), |v| Chatter {
            me: v.0,
            heard: Vec::new(),
        });
        soa.enable_trace();
        soa.run(5);
        let classic = build_classic();
        for v in 0..6 {
            assert_eq!(
                classic.node(NodeId(v)).heard,
                soa.node(NodeId(v)).heard,
                "node {v} heard different streams"
            );
        }
        assert_eq!(classic.metrics().max_bits(), soa.metrics().max_bits());
        assert_eq!(classic.metrics().total_bits(), soa.metrics().total_bits());
        assert_eq!(classic.metrics().bits_per_node(), soa.metrics().bits_per_node());
        assert_eq!(classic.telemetry().deliveries, soa.telemetry().deliveries);
        assert_eq!(classic.telemetry().peak_inflight, soa.telemetry().peak_inflight);
        assert_eq!(classic.trace().unwrap().events(), soa.trace().unwrap().events());
    }

    #[test]
    fn round_stream_reports_the_per_round_ledger() {
        let mut rows: Vec<RoundFlow> = Vec::new();
        let collected = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = std::rc::Rc::clone(&collected);
        let mut soa = SoaEngine::new(topology::path(3), FailureSchedule::none(), |v| Chatter {
            me: v.0,
            heard: Vec::new(),
        });
        soa.stream_rounds(move |f| sink.borrow_mut().push(f));
        soa.run(4);
        rows.extend(collected.borrow().iter().copied());
        assert_eq!(rows.len(), 4);
        // Rounds 1 and 2: all 3 nodes send one 8-bit message; ends reach 1
        // neighbor, the middle reaches 2 → 4 deliveries per talking round.
        assert_eq!(
            (rows[0].round, rows[0].bits, rows[0].logical, rows[0].deliveries),
            (1, 24, 3, 4)
        );
        assert_eq!((rows[1].round, rows[1].bits, rows[1].deliveries), (2, 24, 4));
        assert_eq!((rows[2].bits, rows[2].deliveries), (0, 0));
        // The stream matches the non-lean metrics ledger.
        assert_eq!(soa.metrics().bits_in_round(1), 24);
        assert_eq!(soa.telemetry().deliveries, 8);
    }

    #[test]
    fn lean_metrics_keep_totals_but_skip_the_ledger() {
        let mut soa = SoaEngine::new(topology::path(3), FailureSchedule::none(), |v| Chatter {
            me: v.0,
            heard: Vec::new(),
        });
        soa.use_lean_metrics();
        soa.run(4);
        assert!(soa.metrics().is_lean());
        assert_eq!(soa.metrics().total_bits(), 6 * 8);
        assert_eq!(soa.metrics().max_bits(), 16);
        // The per-round ledger was never materialized.
        assert_eq!(soa.metrics().bits_in_round(1), 0);
    }

    /// Dense reference flooder (the bench microbench's logic, inlined):
    /// round 1 injects the own token; every first sighting is re-sent.
    struct DenseFlood {
        me: NodeId,
        flood: FloodState<u32>,
        seen_list: Vec<u32>,
    }

    #[derive(Clone, Debug)]
    struct Tok(u32);
    impl Message for Tok {
        fn bit_len(&self) -> u64 {
            32
        }
    }

    impl NodeLogic<Tok> for DenseFlood {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Tok>) {
            if ctx.round() == 1 {
                self.flood.mark_seen(self.me.0);
                self.seen_list.push(self.me.0);
                ctx.send(Tok(self.me.0));
            }
            let inbox: Vec<u32> = ctx.inbox().iter().map(|m| m.msg.0).collect();
            for t in inbox {
                if self.flood.first_sighting(t) {
                    self.seen_list.push(t);
                    ctx.send(Tok(t));
                }
            }
        }
    }

    #[test]
    fn bitflood_matches_the_dense_flooder_under_crashes() {
        let g = topology::grid(4, 3);
        let n = g.len();
        let mut sched = FailureSchedule::none();
        sched.crash(NodeId(5), 3);
        sched.crash_partial(NodeId(7), 2, vec![NodeId(6), NodeId(11)]);
        let rounds = 2 * u64::from(g.diameter()) + 2;

        let mut eng = Engine::new(g.clone(), sched.clone(), |v| DenseFlood {
            me: v,
            flood: FloodState::new(),
            seen_list: Vec::new(),
        });
        eng.run(rounds);

        let origins: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let mut lane = BitFlood::new(g, &sched, &origins, 32);
        let report = lane.run(rounds);

        assert_eq!(report.deliveries, eng.telemetry().deliveries);
        assert_eq!(report.total_bits, eng.metrics().total_bits());
        assert_eq!(report.max_bits, eng.metrics().max_bits());
        for v in 0..n as u32 {
            assert_eq!(lane.bits_of(NodeId(v)), eng.metrics().bits_of(NodeId(v)), "node {v}");
            let mut dense: Vec<NodeId> =
                eng.node(NodeId(v)).seen_list.iter().map(|&t| NodeId(t)).collect();
            dense.sort_unstable();
            assert_eq!(lane.seen_tokens(NodeId(v)), dense, "node {v} seen set");
        }
    }

    #[test]
    fn any_engine_dispatches_both_kinds() {
        for kind in [EngineKind::Classic, EngineKind::Soa] {
            let mut eng = AnyEngine::new(kind, topology::path(3), FailureSchedule::none(), |v| {
                Chatter { me: v.0, heard: Vec::new() }
            });
            assert_eq!(eng.kind(), kind);
            eng.enable_trace();
            eng.enter_phase("talk");
            let report = eng.run(4);
            eng.exit_phase();
            assert_eq!(report.rounds, 4);
            assert_eq!(eng.metrics().total_bits(), 6 * 8);
            assert_eq!(eng.telemetry().deliveries, 8);
            assert_eq!(eng.node(NodeId(1)).heard.len(), 4);
            assert!(eng.trace().unwrap().events().len() > 4);
            assert_eq!(eng.alive_connected(NodeId(0), 2).len(), 3);
        }
    }
}
