//! Differential-equivalence helpers shared by the engine test harness.
//!
//! The SoA engine ([`crate::soa::SoaEngine`]) claims bit-for-bit
//! equivalence with the classic [`Engine`]: same trace bytes, same
//! metrics, same telemetry counts, same protocol outcomes. This module
//! turns that claim into something a test can assert in one line — run
//! both engines, [`capture`] a [`RunArtifacts`] from each, and
//! [`assert_equivalent`]. On divergence the panic names the *first*
//! differing artifact (first differing trace line, first differing node's
//! bits, …) so a broken invariant points straight at the round and node
//! that produced it.
//!
//! Everything compared here is deterministic; wall-clock telemetry
//! ([`Telemetry::busy`], phase timings) is deliberately excluded.

use crate::engine::{Engine, Message, NodeLogic, Telemetry};
use crate::metrics::{Metrics, PhaseSpan};
use crate::soa::{AnyEngine, SoaEngine};
use crate::trace::Trace;
use crate::Round;

/// Every deterministic observable of one engine run, in directly
/// comparable (mostly serialized) form.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArtifacts {
    /// Which engine produced this (`"classic"` / `"soa"`); *not* compared.
    pub engine: String,
    /// The trace serialized line-by-line to v2 JSONL (header first), empty
    /// when the run was not traced. Compared byte-for-byte.
    pub trace: Vec<String>,
    /// Per-node bits broadcast ([`Metrics::bits_per_node`]).
    pub bits_per_node: Vec<u64>,
    /// Per-node logical messages broadcast.
    pub sends_per_node: Vec<u64>,
    /// The per-round (round, bits) ledger, skipping zero rounds.
    pub per_round_bits: Vec<(Round, u64)>,
    /// Recorded phase spans.
    pub spans: Vec<PhaseSpan>,
    /// Rounds executed ([`Telemetry::rounds`]).
    pub rounds: u64,
    /// Total deliveries enqueued ([`Telemetry::deliveries`]).
    pub deliveries: u64,
    /// Largest single-round delivery volume ([`Telemetry::peak_inflight`]).
    pub peak_inflight: u64,
    /// The engine's final round counter.
    pub last_round: Round,
}

/// Serializes a [`Trace`] to its v2 JSONL lines, header included — the
/// exact bytes `JsonlSink` would have written, one line per entry.
pub fn trace_to_jsonl(trace: &Trace) -> Vec<String> {
    let mut lines = Vec::with_capacity(trace.events().len() + 1);
    lines.push(format!(
        "{{\"schema\":\"ftagg-trace\",\"v\":{}}}",
        crate::trace::TRACE_SCHEMA_VERSION
    ));
    lines.extend(trace.events().iter().map(|e| e.to_jsonl()));
    lines
}

/// Captures artifacts from the shared parts of any engine. The engine-type
/// specific [`capture`] wrappers feed this.
pub fn capture_parts(
    engine: &str,
    trace: Option<&Trace>,
    metrics: &Metrics,
    telemetry: &Telemetry,
    last_round: Round,
) -> RunArtifacts {
    RunArtifacts {
        engine: engine.to_string(),
        trace: trace.map(trace_to_jsonl).unwrap_or_default(),
        bits_per_node: metrics.bits_per_node().to_vec(),
        sends_per_node: (0..metrics.bits_per_node().len())
            .map(|i| metrics.sends_of(crate::NodeId(i as u32)))
            .collect(),
        per_round_bits: metrics.per_round_bits().collect(),
        spans: metrics.spans().to_vec(),
        rounds: telemetry.rounds,
        deliveries: telemetry.deliveries,
        peak_inflight: telemetry.peak_inflight,
        last_round,
    }
}

/// Captures every deterministic observable of an [`AnyEngine`] run.
pub fn capture<M: Message, L: NodeLogic<M>>(eng: &AnyEngine<M, L>) -> RunArtifacts {
    capture_parts(eng.kind().name(), eng.trace(), eng.metrics(), eng.telemetry(), eng.round())
}

/// [`capture`] for a bare classic [`Engine`].
pub fn capture_classic<M: Message, L: NodeLogic<M>>(eng: &Engine<M, L>) -> RunArtifacts {
    capture_parts("classic", eng.trace(), eng.metrics(), eng.telemetry(), eng.round())
}

/// [`capture`] for a bare [`SoaEngine`].
pub fn capture_soa<M: Message, L: NodeLogic<M>>(eng: &SoaEngine<M, L>) -> RunArtifacts {
    capture_parts("soa", eng.trace(), eng.metrics(), eng.telemetry(), eng.round())
}

impl RunArtifacts {
    /// The first way `self` and `other` differ, described precisely enough
    /// to debug from (artifact name, position, both values) — or `None` if
    /// the runs are equivalent. Trace bytes are checked first since a
    /// trace divergence localizes the guilty round and node directly.
    pub fn first_divergence(&self, other: &RunArtifacts) -> Option<String> {
        let (a, b) = (&self.engine, &other.engine);
        for (i, (la, lb)) in self.trace.iter().zip(other.trace.iter()).enumerate() {
            if la != lb {
                return Some(format!("trace line {i} differs:\n  {a}: {la}\n  {b}: {lb}"));
            }
        }
        if self.trace.len() != other.trace.len() {
            let (longer, at) = if self.trace.len() > other.trace.len() {
                (a, other.trace.len())
            } else {
                (b, self.trace.len())
            };
            return Some(format!(
                "trace lengths differ ({}: {} lines, {}: {} lines); first extra line in {longer}: {}",
                a,
                self.trace.len(),
                b,
                other.trace.len(),
                self.trace.get(at).or_else(|| other.trace.get(at)).unwrap()
            ));
        }
        if self.bits_per_node.len() != other.bits_per_node.len() {
            return Some(format!(
                "node counts differ: {a} has {}, {b} has {}",
                self.bits_per_node.len(),
                other.bits_per_node.len()
            ));
        }
        for (i, (ba, bb)) in self.bits_per_node.iter().zip(other.bits_per_node.iter()).enumerate() {
            if ba != bb {
                return Some(format!("node {i} bits differ: {a}={ba}, {b}={bb}"));
            }
        }
        for (i, (sa, sb)) in self.sends_per_node.iter().zip(other.sends_per_node.iter()).enumerate()
        {
            if sa != sb {
                return Some(format!("node {i} sends differ: {a}={sa}, {b}={sb}"));
            }
        }
        if self.per_round_bits != other.per_round_bits {
            let diff =
                self.per_round_bits.iter().zip(other.per_round_bits.iter()).find(|(x, y)| x != y);
            return Some(match diff {
                Some((x, y)) => format!(
                    "per-round bits differ at round {}: {a}={}, {b} round {} = {}",
                    x.0, x.1, y.0, y.1
                ),
                None => format!(
                    "per-round ledger lengths differ: {a}={}, {b}={}",
                    self.per_round_bits.len(),
                    other.per_round_bits.len()
                ),
            });
        }
        if self.spans != other.spans {
            return Some(format!(
                "phase spans differ:\n  {a}: {:?}\n  {b}: {:?}",
                self.spans, other.spans
            ));
        }
        if self.rounds != other.rounds {
            return Some(format!(
                "telemetry.rounds differ: {a}={}, {b}={}",
                self.rounds, other.rounds
            ));
        }
        if self.deliveries != other.deliveries {
            return Some(format!(
                "telemetry.deliveries differ: {a}={}, {b}={}",
                self.deliveries, other.deliveries
            ));
        }
        if self.peak_inflight != other.peak_inflight {
            return Some(format!(
                "telemetry.peak_inflight differ: {a}={}, {b}={}",
                self.peak_inflight, other.peak_inflight
            ));
        }
        if self.last_round != other.last_round {
            return Some(format!(
                "final round differs: {a}={}, {b}={}",
                self.last_round, other.last_round
            ));
        }
        None
    }
}

/// Panics with the first divergence if the two runs are not bit-identical.
/// `context` names the scenario (driver, schedule, seed) for the message.
pub fn assert_equivalent(a: &RunArtifacts, b: &RunArtifacts, context: &str) {
    if let Some(d) = a.first_divergence(b) {
        panic!("engines diverge [{context}]: {d}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifacts(bits: Vec<u64>) -> RunArtifacts {
        RunArtifacts {
            engine: "classic".into(),
            trace: vec!["{\"schema\":\"ftagg-trace\",\"v\":2}".into()],
            bits_per_node: bits,
            sends_per_node: vec![1, 1],
            per_round_bits: vec![(1, 16)],
            spans: Vec::new(),
            rounds: 1,
            deliveries: 2,
            peak_inflight: 2,
            last_round: 1,
        }
    }

    #[test]
    fn identical_artifacts_have_no_divergence() {
        let a = artifacts(vec![8, 8]);
        assert_eq!(a.first_divergence(&artifacts(vec![8, 8])), None);
    }

    #[test]
    fn bit_difference_is_localized_to_the_node() {
        let a = artifacts(vec![8, 8]);
        let d = a.first_divergence(&artifacts(vec![8, 9])).unwrap();
        assert!(d.contains("node 1 bits differ"), "{d}");
    }

    #[test]
    fn trace_difference_wins_over_metric_difference() {
        let a = artifacts(vec![8, 8]);
        let mut b = artifacts(vec![8, 9]);
        b.trace.push("{\"ev\":\"x\"}".into());
        let d = a.first_divergence(&b).unwrap();
        assert!(d.contains("trace lengths differ"), "{d}");
    }
}
