//! Execution tracing: an optional per-round event log and pluggable sinks.
//!
//! Protocol debugging and the experiment harness sometimes need to *see*
//! an execution — who broadcast in which round, what was delivered where,
//! when crashes took effect, which protocol phase the traffic belongs to.
//! The engine emits [`Event`]s into a [`TraceSink`] when tracing is enabled
//! (it is off by default; the hot path pays one branch). Three sinks ship
//! with the crate:
//!
//! - [`Trace`] — the in-memory, queryable event log;
//! - [`RingSink`] — a bounded ring buffer keeping the most recent events,
//!   for long executions where only the tail matters;
//! - [`JsonlSink`] — line-delimited JSON for offline analysis; the schema
//!   is versioned ([`TRACE_SCHEMA_VERSION`]) and read back by
//!   [`Trace::from_jsonl`].
//!
//! Since schema v2 every `Send`/`Deliver` carries an [`EventId`] plus
//! causal lineage (`Send.causes`: the delivery events the broadcast
//! depended on; `Deliver.src`: the producing send), consumed by
//! [`crate::causal`] to build a provenance DAG. v1 traces are still
//! readable — absent causal fields parse as empty lineage.
//!
//! The observability layer is **passive**: sinks only observe the events
//! the engine hands them and can never perturb an execution (pinned by
//! `tests/observer_noninterference.rs`).

use crate::adversary::Round;
use crate::graph::NodeId;
use std::any::Any;
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};

/// Version of the JSONL trace schema emitted by [`JsonlSink`] and asserted
/// by [`Trace::from_jsonl`]. Bump when the line format changes; the golden
/// snapshot test in `tests/golden_trace.rs` pins the on-disk format of the
/// current version. The reader also accepts the immediately previous
/// version ([`TRACE_SCHEMA_COMPAT_MIN`]) with absent fields defaulted.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// Oldest schema version [`Trace::from_jsonl`] still accepts. v1 traces
/// (PR 2/3 era) lack event ids and causal lineage; they parse with
/// [`EventId::NONE`] ids, empty `kind`s and empty `causes`.
pub const TRACE_SCHEMA_COMPAT_MIN: u32 = 1;

/// Identity of one traced `Send`/`Deliver` event, assigned by the engine
/// in strictly increasing record order while a sink is installed. Id `0`
/// ([`EventId::NONE`]) means "unknown / tracing was off when this was
/// produced" and never names a real event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl EventId {
    /// The null id: no event. Real ids start at 1.
    pub const NONE: EventId = EventId(0);

    /// Whether this id names a real event.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A node locally broadcast `logical` combined messages of `bits`
    /// total bits in `round`. When a sink is installed the engine groups
    /// the outbox by message [`kind`](crate::engine::Message::kind) and
    /// emits one `Send` event per kind, so per-kind `bits` partition the
    /// node's round total exactly.
    Send {
        /// The round of the broadcast.
        round: Round,
        /// The broadcasting node.
        node: NodeId,
        /// Total encoded bits (of this kind, when kinds are in play).
        bits: u64,
        /// Number of logical messages combined.
        logical: u64,
        /// Engine-assigned event id ([`EventId::NONE`] in v1 traces).
        id: EventId,
        /// Protocol-declared message kind (`""` = untagged).
        kind: String,
        /// Ids of the `Deliver` events this broadcast causally depends
        /// on, as declared via `RoundCtx::send_caused_by`. Empty means
        /// "unknown" — [`crate::causal`] then falls back to the
        /// conservative closure (all earlier deliveries at this node).
        causes: Vec<EventId>,
    },
    /// A live node received one logical message in `round` (broadcast by
    /// `from` in the previous round). Dead nodes receive nothing.
    Deliver {
        /// The round of the delivery.
        round: Round,
        /// The receiving node.
        node: NodeId,
        /// The neighbor that broadcast the message.
        from: NodeId,
        /// Encoded bits of the delivered message.
        bits: u64,
        /// Engine-assigned event id ([`EventId::NONE`] in v1 traces).
        id: EventId,
        /// Id of the `Send` event that produced this delivery
        /// ([`EventId::NONE`] in v1 traces).
        src: EventId,
    },
    /// A node became dead at the start of `round` (first round it did not
    /// execute).
    Crash {
        /// The first dead round.
        round: Round,
        /// The crashed node.
        node: NodeId,
    },
    /// A protocol phase (AGG, VERI, an Algorithm 1 interval, …) begins at
    /// `round`. Emitted by the harness, mirroring
    /// [`crate::metrics::Metrics`] phase attribution.
    PhaseEnter {
        /// First round of the phase.
        round: Round,
        /// Phase label.
        label: String,
    },
    /// The innermost open phase ends at `round` (inclusive).
    PhaseExit {
        /// Last round of the phase.
        round: Round,
        /// Phase label.
        label: String,
    },
    /// A node decided an output (normally the root, with the aggregate).
    Decide {
        /// The round of the decision.
        round: Round,
        /// The deciding node.
        node: NodeId,
        /// The decided value.
        value: u64,
    },
}

impl Event {
    /// A `Send` event with no id/kind/lineage (v1-shaped) — convenience
    /// for tests and hand-built traces.
    pub fn send(round: Round, node: NodeId, bits: u64, logical: u64) -> Event {
        Event::Send {
            round,
            node,
            bits,
            logical,
            id: EventId::NONE,
            kind: String::new(),
            causes: Vec::new(),
        }
    }

    /// A `Deliver` event with no id/src (v1-shaped) — convenience for
    /// tests and hand-built traces.
    pub fn deliver(round: Round, node: NodeId, from: NodeId, bits: u64) -> Event {
        Event::Deliver { round, node, from, bits, id: EventId::NONE, src: EventId::NONE }
    }

    /// The round the event belongs to.
    pub fn round(&self) -> Round {
        match self {
            Event::Send { round, .. }
            | Event::Deliver { round, .. }
            | Event::Crash { round, .. }
            | Event::PhaseEnter { round, .. }
            | Event::PhaseExit { round, .. }
            | Event::Decide { round, .. } => *round,
        }
    }

    /// The node the event concerns, if any (phase markers are global).
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Event::Send { node, .. }
            | Event::Deliver { node, .. }
            | Event::Crash { node, .. }
            | Event::Decide { node, .. } => Some(*node),
            Event::PhaseEnter { .. } | Event::PhaseExit { .. } => None,
        }
    }

    /// Stable lowercase tag naming the event kind (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Send { .. } => "send",
            Event::Deliver { .. } => "deliver",
            Event::Crash { .. } => "crash",
            Event::PhaseEnter { .. } => "phase_enter",
            Event::PhaseExit { .. } => "phase_exit",
            Event::Decide { .. } => "decide",
        }
    }

    /// The canonical JSONL encoding of this event (one line, no newline).
    /// Causal fields keep the stream compact: `id` is always present on
    /// `send`/`deliver`, `kind`/`causes`/`src` only when non-empty.
    pub fn to_jsonl(&self) -> String {
        match self {
            Event::Send { round, node, bits, logical, id, kind, causes } => {
                let mut line = format!(
                    "{{\"ev\":\"send\",\"r\":{round},\"n\":{},\"bits\":{bits},\"logical\":{logical},\"id\":{}",
                    node.0, id.0
                );
                if !kind.is_empty() {
                    line.push_str(&format!(",\"kind\":\"{}\"", escape_json(kind)));
                }
                if !causes.is_empty() {
                    line.push_str(",\"causes\":[");
                    for (i, c) in causes.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        line.push_str(&c.0.to_string());
                    }
                    line.push(']');
                }
                line.push('}');
                line
            }
            Event::Deliver { round, node, from, bits, id, src } => {
                let mut line = format!(
                    "{{\"ev\":\"deliver\",\"r\":{round},\"n\":{},\"from\":{},\"bits\":{bits},\"id\":{}",
                    node.0, from.0, id.0
                );
                if src.is_some() {
                    line.push_str(&format!(",\"src\":{}", src.0));
                }
                line.push('}');
                line
            }
            Event::Crash { round, node } => {
                format!("{{\"ev\":\"crash\",\"r\":{round},\"n\":{}}}", node.0)
            }
            Event::PhaseEnter { round, label } => format!(
                "{{\"ev\":\"phase_enter\",\"r\":{round},\"label\":\"{}\"}}",
                escape_json(label)
            ),
            Event::PhaseExit { round, label } => format!(
                "{{\"ev\":\"phase_exit\",\"r\":{round},\"label\":\"{}\"}}",
                escape_json(label)
            ),
            Event::Decide { round, node, value } => {
                format!("{{\"ev\":\"decide\",\"r\":{round},\"n\":{},\"value\":{value}}}", node.0)
            }
        }
    }

    /// Parses one JSONL event line (the inverse of [`Event::to_jsonl`]).
    /// Causal fields are optional, so v1 lines parse too (with
    /// [`EventId::NONE`] ids and empty lineage).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_jsonl(line: &str) -> Result<Event, String> {
        let ev = json_str(line, "ev").ok_or_else(|| format!("missing \"ev\" in {line:?}"))?;
        let round = json_u64(line, "r")?;
        let node = |key: &str| -> Result<NodeId, String> {
            Ok(NodeId(u32::try_from(json_u64(line, key)?).map_err(|_| "node id overflow")?))
        };
        match ev.as_str() {
            "send" => Ok(Event::Send {
                round,
                node: node("n")?,
                bits: json_u64(line, "bits")?,
                logical: json_u64(line, "logical")?,
                id: EventId(json_u64_opt(line, "id")?.unwrap_or(0)),
                kind: json_str(line, "kind").unwrap_or_default(),
                causes: json_id_array(line, "causes")?,
            }),
            "deliver" => Ok(Event::Deliver {
                round,
                node: node("n")?,
                from: node("from")?,
                bits: json_u64(line, "bits")?,
                id: EventId(json_u64_opt(line, "id")?.unwrap_or(0)),
                src: EventId(json_u64_opt(line, "src")?.unwrap_or(0)),
            }),
            "crash" => Ok(Event::Crash { round, node: node("n")? }),
            "phase_enter" => Ok(Event::PhaseEnter {
                round,
                label: json_str(line, "label").ok_or("missing \"label\"")?,
            }),
            "phase_exit" => Ok(Event::PhaseExit {
                round,
                label: json_str(line, "label").ok_or("missing \"label\"")?,
            }),
            "decide" => {
                Ok(Event::Decide { round, node: node("n")?, value: json_u64(line, "value")? })
            }
            other => Err(format!("unknown event kind '{other}'")),
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                        out.push(c);
                    }
                }
                Some(c) => out.push(c),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts the raw text of `"key":<value>` from a single-line JSON object.
/// Scalar values only — array values need [`json_id_array`], since the
/// non-string branch stops at the first `,`.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // A string value: scan to the closing unescaped quote.
        let mut prev_backslash = false;
        for (i, c) in stripped.char_indices() {
            match c {
                '\\' if !prev_backslash => prev_backslash = true,
                '"' if !prev_backslash => return Some(&stripped[..i]),
                _ => prev_backslash = false,
            }
        }
        None
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim())
    }
}

fn json_u64(line: &str, key: &str) -> Result<u64, String> {
    json_raw(line, key)
        .ok_or_else(|| format!("missing \"{key}\" in {line:?}"))?
        .parse()
        .map_err(|_| format!("bad \"{key}\" in {line:?}"))
}

/// Like [`json_u64`] but absent keys are `Ok(None)` (malformed values are
/// still errors) — for fields that older schema versions did not emit.
fn json_u64_opt(line: &str, key: &str) -> Result<Option<u64>, String> {
    match json_raw(line, key) {
        None => Ok(None),
        Some(raw) => raw.parse().map(Some).map_err(|_| format!("bad \"{key}\" in {line:?}")),
    }
}

/// Parses `"key":[1,2,3]` into event ids; absent key means an empty list.
fn json_id_array(line: &str, key: &str) -> Result<Vec<EventId>, String> {
    let pat = format!("\"{key}\":[");
    let Some(start) = line.find(&pat) else {
        return Ok(Vec::new());
    };
    let rest = &line[start + pat.len()..];
    let end = rest.find(']').ok_or_else(|| format!("unterminated \"{key}\" in {line:?}"))?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map(EventId)
                .map_err(|_| format!("bad \"{key}\" entry {s:?} in {line:?}"))
        })
        .collect()
}

fn json_str(line: &str, key: &str) -> Option<String> {
    json_raw(line, key).map(unescape_json)
}

/// A consumer of engine events. The engine holds at most one sink and pays
/// a single branch per event site when no sink is installed; everything a
/// sink does is invisible to the execution it observes.
pub trait TraceSink: Any {
    /// Receives one event. Events arrive in non-decreasing round order.
    fn record(&mut self, e: &Event);

    /// Whether this sink needs per-delivery [`Event::Deliver`] records.
    ///
    /// The engines consult this **once, at sink installation**, and skip
    /// building delivery events (and their src-id side channels) entirely
    /// when the answer is `false` — at N = 2²⁰ deliveries outnumber sends
    /// by orders of magnitude, so this bit is the difference between a
    /// few percent of overhead and a multiple. Defaults to `true`;
    /// sampling/recording sinks that only need sends, crashes, phases,
    /// and decides (replay, metrics, and blame are send-driven) override
    /// it. A `false` answer changes only which events this sink sees,
    /// never the execution.
    fn wants_delivers(&self) -> bool {
        true
    }

    /// Upcast for downcasting a boxed sink back to its concrete type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An append-only event log ordered by round.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
    /// Set when this trace is known to be missing events (e.g. it came
    /// from a [`RingSink`] that dropped its head). Analyses must surface
    /// this instead of silently reporting on a partial stream.
    truncated: bool,
    /// Largest [`EventId`] seen, for id-shifting merges.
    max_id: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event (engine-internal). Events must arrive in
    /// non-decreasing round order — the engine guarantees it, and
    /// [`Trace::in_round`] relies on it to binary-search.
    pub fn push(&mut self, e: Event) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.round() <= e.round()),
            "events must be appended in round order ({} after {})",
            e.round(),
            self.events.last().map_or(0, Event::round),
        );
        match &e {
            Event::Send { id, .. } | Event::Deliver { id, .. } => {
                self.max_id = self.max_id.max(id.0);
            }
            _ => {}
        }
        self.events.push(e);
    }

    /// All events in append (= round) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Whether events are known to be missing from this log (ring-buffer
    /// eviction). Reports built on a truncated trace must say so.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Marks the log as missing events (see [`Trace::truncated`]).
    pub fn set_truncated(&mut self, truncated: bool) {
        self.truncated = truncated;
    }

    /// The largest [`EventId`] appearing in the log.
    pub fn max_event_id(&self) -> u64 {
        self.max_id
    }

    /// Keeps only the events `keep` accepts (round order is preserved;
    /// `max_id` stays a valid upper bound).
    pub fn retain(&mut self, keep: impl FnMut(&Event) -> bool) {
        self.events.retain(keep);
    }

    /// Merges a sub-execution's trace, shifting its rounds by `offset`
    /// (local round `r` becomes `offset + r`) and its non-null event ids
    /// past ours so lineage stays unambiguous — the trace-level analogue
    /// of [`crate::metrics::Metrics::absorb_shifted`]. The caller must
    /// absorb sub-traces in increasing window order (as Algorithm 1's
    /// disjoint intervals are), or round order breaks.
    pub fn absorb_shifted(&mut self, other: &Trace, offset: Round) {
        let base = self.max_id;
        let bump = |id: EventId| if id.is_some() { EventId(id.0 + base) } else { id };
        for e in &other.events {
            let shifted = match e {
                Event::Send { round, node, bits, logical, id, kind, causes } => Event::Send {
                    round: round + offset,
                    node: *node,
                    bits: *bits,
                    logical: *logical,
                    id: bump(*id),
                    kind: kind.clone(),
                    causes: causes.iter().map(|&c| bump(c)).collect(),
                },
                Event::Deliver { round, node, from, bits, id, src } => Event::Deliver {
                    round: round + offset,
                    node: *node,
                    from: *from,
                    bits: *bits,
                    id: bump(*id),
                    src: bump(*src),
                },
                Event::Crash { round, node } => Event::Crash { round: round + offset, node: *node },
                Event::PhaseEnter { round, label } => {
                    Event::PhaseEnter { round: round + offset, label: label.clone() }
                }
                Event::PhaseExit { round, label } => {
                    Event::PhaseExit { round: round + offset, label: label.clone() }
                }
                Event::Decide { round, node, value } => {
                    Event::Decide { round: round + offset, node: *node, value: *value }
                }
            };
            self.push(shifted);
        }
        self.truncated |= other.truncated;
    }

    /// Events of one round, located by binary search over the round-ordered
    /// event vec (O(log |events| + answer), not a full scan).
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &Event> {
        let lo = self.events.partition_point(|e| e.round() < round);
        let hi = self.events[lo..].partition_point(|e| e.round() <= round) + lo;
        self.events[lo..hi].iter()
    }

    /// Events concerning one node.
    pub fn of_node(&self, node: NodeId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.node() == Some(node))
    }

    /// Rounds in which `node` broadcast anything, ascending (deduplicated:
    /// per-kind `Send` events in the same round count once).
    pub fn send_rounds(&self, node: NodeId) -> Vec<Round> {
        let mut rounds: Vec<Round> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Send { round, node: n, .. } if *n == node => Some(*round),
                _ => None,
            })
            .collect();
        rounds.dedup();
        rounds
    }

    /// The last round with any event, if non-empty.
    pub fn last_round(&self) -> Option<Round> {
        // Events are round-ordered, so the maximum is the last one.
        self.events.last().map(Event::round)
    }

    /// Reconstructs the communication [`crate::metrics::Metrics`] this
    /// trace implies: per-node and per-round counters from `Send` events,
    /// phase spans from the phase markers. The node-count is inferred from
    /// the largest id mentioned. Offline reports use this to analyze a
    /// saved JSONL trace exactly as if the run were live. Per-kind `Send`
    /// events accumulate, so the replayed totals equal the live ones.
    pub fn replay_metrics(&self) -> crate::metrics::Metrics {
        let n =
            self.events.iter().filter_map(|e| e.node()).map(|v| v.index() + 1).max().unwrap_or(0);
        let mut m = crate::metrics::Metrics::new(n);
        for e in &self.events {
            m.note_round(e.round());
            match e {
                Event::Send { round, node, bits, logical, .. } => {
                    m.record_send(*node, *round, *bits, *logical);
                }
                Event::PhaseEnter { round, label } => m.enter_phase_at(label, *round),
                Event::PhaseExit { round, .. } => {
                    let _ = m.exit_phase_at(*round);
                }
                _ => {}
            }
        }
        m
    }

    /// Parses a JSONL trace (as written by [`JsonlSink`]), validating the
    /// schema header. Accepts the current schema and v1 (absent causal
    /// fields parse as empty lineage); anything else is rejected loudly —
    /// never reinterpreted silently.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure, a missing/mismatched schema
    /// header, or a malformed event line.
    pub fn from_jsonl(reader: impl BufRead) -> Result<Trace, String> {
        let mut trace = Trace::new();
        let mut saw_header = false;
        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
            if line.trim().is_empty() {
                continue;
            }
            if !saw_header {
                let schema = json_str(&line, "schema")
                    .ok_or_else(|| format!("line 1 is not a schema header: {line:?}"))?;
                if schema != "ftagg-trace" {
                    return Err(format!("unknown schema '{schema}'"));
                }
                let v = json_u64(&line, "v")?;
                let supported =
                    u64::from(TRACE_SCHEMA_COMPAT_MIN)..=u64::from(TRACE_SCHEMA_VERSION);
                if !supported.contains(&v) {
                    return Err(format!(
                        "trace schema v{v} unsupported (reader speaks v{TRACE_SCHEMA_COMPAT_MIN}..=v{TRACE_SCHEMA_VERSION})"
                    ));
                }
                saw_header = true;
                continue;
            }
            trace.push(Event::from_jsonl(&line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        if !saw_header {
            return Err("empty trace file (no schema header)".into());
        }
        Ok(trace)
    }

    /// Renders a human-readable per-round summary (for harness output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut cur = 0;
        for e in &self.events {
            if e.round() != cur {
                cur = e.round();
                let _ = writeln!(out, "-- round {cur} --");
            }
            match e {
                Event::Send { node, bits, logical, kind, .. } => {
                    if kind.is_empty() {
                        let _ = writeln!(out, "  {node:?} sends {logical} msg(s), {bits} bits");
                    } else {
                        let _ = writeln!(
                            out,
                            "  {node:?} sends {logical} msg(s), {bits} bits [{kind}]"
                        );
                    }
                }
                Event::Deliver { node, from, bits, .. } => {
                    let _ = writeln!(out, "  {node:?} <- {from:?} ({bits} bits)");
                }
                Event::Crash { node, .. } => {
                    let _ = writeln!(out, "  {node:?} CRASHED");
                }
                Event::PhaseEnter { label, .. } => {
                    let _ = writeln!(out, "  == phase {label} begins ==");
                }
                Event::PhaseExit { label, .. } => {
                    let _ = writeln!(out, "  == phase {label} ends ==");
                }
                Event::Decide { node, value, .. } => {
                    let _ = writeln!(out, "  {node:?} DECIDES {value}");
                }
            }
        }
        out
    }
}

impl TraceSink for Trace {
    fn record(&mut self, e: &Event) {
        self.push(e.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A bounded ring-buffer sink: keeps the most recent `capacity` events and
/// counts the rest, for long executions where holding the full log would
/// dominate memory.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `capacity` events (capacity 0 keeps none and
    /// only counts).
    pub fn new(capacity: usize) -> Self {
        RingSink { capacity, events: VecDeque::with_capacity(capacity.min(1024)), dropped: 0 }
    }

    /// The retained (most recent) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events evicted to honor the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events observed (retained + dropped).
    pub fn seen(&self) -> u64 {
        self.dropped + self.events.len() as u64
    }

    /// The retained tail as a queryable [`Trace`]. If any event was
    /// evicted the result is marked [`Trace::truncated`], so downstream
    /// analyses know they are looking at a partial stream.
    pub fn to_trace(&self) -> Trace {
        let mut t = Trace::new();
        for e in &self.events {
            t.push(e.clone());
        }
        t.set_truncated(self.dropped > 0);
        t
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, e: &Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A line-delimited JSON sink for offline analysis. The first line is a
/// schema header (`{"schema":"ftagg-trace","v":2}`); every following line
/// is one [`Event`] (see [`Event::to_jsonl`]). Read back with
/// [`Trace::from_jsonl`].
///
/// I/O errors are latched: the first failure stops further writes and is
/// surfaced by [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write + 'static> {
    writer: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write + 'static> JsonlSink<W> {
    /// Wraps `writer`, emitting the schema header immediately.
    pub fn new(mut writer: W) -> Self {
        let error =
            writeln!(writer, "{{\"schema\":\"ftagg-trace\",\"v\":{TRACE_SCHEMA_VERSION}}}").err();
        JsonlSink { writer, lines: 1, error }
    }

    /// Event lines written so far, including the header.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first error any write hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, e: &Event) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.writer, "{}", e.to_jsonl()) {
            Ok(()) => self.lines += 1,
            Err(err) => self.error = Some(err),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[inline]
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A fixed stack buffer for one event's worth of varints, flushed into the
/// stream with a single `extend_from_slice` — the flight-recorder hot path
/// encodes ~10⁶ send events per million-node round, and per-byte `Vec`
/// pushes are the dominant cost there.
struct Scratch {
    buf: [u8; 192],
    len: usize,
}

impl Scratch {
    #[inline]
    fn new() -> Scratch {
        Scratch { buf: [0; 192], len: 0 }
    }

    /// Appends one LEB128 varint; callers bound their field count so the
    /// 192-byte scratch (19 maximal varints) can never overflow.
    #[inline]
    fn put(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf[self.len] = byte;
                self.len += 1;
                return;
            }
            self.buf[self.len] = byte | 0x80;
            self.len += 1;
        }
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or("delta stream truncated inside varint")?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint overflows u64".into());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A delta-encoded binary sink: the in-flight representation of a trace at
/// a fraction of its JSONL size, decoding back to the v2 JSONL stream
/// **byte-for-byte** (pinned by `prop_soa.rs`).
///
/// The stream exploits what event logs actually look like: rounds are
/// monotone (stored as deltas), event ids count up from the previous id
/// (zigzag deltas), `src`/`causes` point a short distance backwards
/// (stored as distances from the carrying event's id), and the `kind` /
/// phase-label strings come from a tiny set (interned in-stream on first
/// use). Every field is an LEB128 varint, so the common
/// send/deliver event costs a handful of bytes instead of a ~100-byte
/// JSON line.
#[derive(Clone, Debug, Default)]
pub struct DeltaSink {
    buf: Vec<u8>,
    /// In-stream string table; index 0 is pre-seeded as the empty string.
    strings: Vec<String>,
    prev_round: Round,
    prev_id: u64,
    events: u64,
}

/// Tags of the delta stream's event records, in [`Event`] variant order.
const DELTA_TAG_SEND: u64 = 0;
const DELTA_TAG_DELIVER: u64 = 1;
const DELTA_TAG_CRASH: u64 = 2;
const DELTA_TAG_PHASE_ENTER: u64 = 3;
const DELTA_TAG_PHASE_EXIT: u64 = 4;
const DELTA_TAG_DECIDE: u64 = 5;

impl DeltaSink {
    /// An empty delta stream.
    pub fn new() -> Self {
        DeltaSink { strings: vec![String::new()], ..Self::default() }
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the sink, returning the encoded stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Events encoded so far.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    fn put_string(&mut self, s: &str) {
        match self.intern_index(s) {
            Some(i) => put_varint(&mut self.buf, i as u64),
            None => {
                put_varint(&mut self.buf, self.strings.len() as u64);
                put_varint(&mut self.buf, s.len() as u64);
                self.buf.extend_from_slice(s.as_bytes());
                self.strings.push(s.to_string());
            }
        }
    }

    /// The in-stream table index of `s`, if already interned. The table
    /// stays tiny (message kinds + phase labels), so a linear scan wins
    /// over any map.
    #[inline]
    fn intern_index(&self, s: &str) -> Option<usize> {
        self.strings.iter().position(|t| t == s)
    }

    /// Round delta (monotone in well-formed traces, zigzag for safety)
    /// shared by every record; updates the predictor.
    fn put_round(&mut self, round: Round) {
        put_varint(&mut self.buf, zigzag(round as i64 - self.prev_round as i64));
        self.prev_round = round;
    }

    /// Event id as a zigzag delta from the previous non-null id; null ids
    /// (pre-sink deliveries) encode but do not advance the predictor.
    fn put_id(&mut self, id: EventId) {
        put_varint(&mut self.buf, zigzag(id.0 as i64 - self.prev_id as i64));
        if id.0 != 0 {
            self.prev_id = id.0;
        }
    }

    /// Decodes a stream back to its events.
    ///
    /// # Errors
    ///
    /// Returns a message on a truncated or corrupt stream.
    pub fn decode(bytes: &[u8]) -> Result<Vec<Event>, String> {
        let mut out = Vec::new();
        let mut strings = vec![String::new()];
        let mut prev_round: Round = 0;
        let mut prev_id: u64 = 0;
        let mut pos = 0usize;
        let get_string =
            |bytes: &[u8], pos: &mut usize, strings: &mut Vec<String>| -> Result<String, String> {
                let i = get_varint(bytes, pos)? as usize;
                if i < strings.len() {
                    return Ok(strings[i].clone());
                }
                if i != strings.len() {
                    return Err(format!("string index {i} skips table of {}", strings.len()));
                }
                let len = get_varint(bytes, pos)? as usize;
                let end = pos.checked_add(len).filter(|&e| e <= bytes.len());
                let end = end.ok_or("delta stream truncated inside string")?;
                let s = std::str::from_utf8(&bytes[*pos..end])
                    .map_err(|_| "non-UTF-8 string in delta stream")?
                    .to_string();
                *pos = end;
                strings.push(s.clone());
                Ok(s)
            };
        while pos < bytes.len() {
            let tag = get_varint(bytes, &mut pos)?;
            let round = {
                let d = unzigzag(get_varint(bytes, &mut pos)?);
                let r = prev_round.checked_add_signed(d).ok_or("round delta underflows")?;
                prev_round = r;
                r
            };
            let get_id = |pos: &mut usize, prev_id: &mut u64| -> Result<EventId, String> {
                let d = unzigzag(get_varint(bytes, pos)?);
                let id = prev_id.checked_add_signed(d).ok_or("id delta underflows")?;
                if id != 0 {
                    *prev_id = id;
                }
                Ok(EventId(id))
            };
            let ev = match tag {
                DELTA_TAG_SEND => {
                    let node = NodeId(get_varint(bytes, &mut pos)? as u32);
                    let bits = get_varint(bytes, &mut pos)?;
                    let logical = get_varint(bytes, &mut pos)?;
                    let id = get_id(&mut pos, &mut prev_id)?;
                    let kind = get_string(bytes, &mut pos, &mut strings)?;
                    let n_causes = get_varint(bytes, &mut pos)? as usize;
                    let mut causes = Vec::with_capacity(n_causes);
                    for _ in 0..n_causes {
                        let back = unzigzag(get_varint(bytes, &mut pos)?)
                            .checked_neg()
                            .ok_or("cause distance overflows")?;
                        let c = id.0.checked_add_signed(back).ok_or("cause underflows")?;
                        causes.push(EventId(c));
                    }
                    Event::Send { round, node, bits, logical, id, kind, causes }
                }
                DELTA_TAG_DELIVER => {
                    let node = NodeId(get_varint(bytes, &mut pos)? as u32);
                    let from = NodeId(get_varint(bytes, &mut pos)? as u32);
                    let bits = get_varint(bytes, &mut pos)?;
                    let id = get_id(&mut pos, &mut prev_id)?;
                    let src_code = get_varint(bytes, &mut pos)?;
                    let src = if src_code == 0 {
                        EventId::NONE
                    } else {
                        let back =
                            unzigzag(src_code - 1).checked_neg().ok_or("src distance overflows")?;
                        EventId(id.0.checked_add_signed(back).ok_or("src underflows")?)
                    };
                    Event::Deliver { round, node, from, bits, id, src }
                }
                DELTA_TAG_CRASH => {
                    Event::Crash { round, node: NodeId(get_varint(bytes, &mut pos)? as u32) }
                }
                DELTA_TAG_PHASE_ENTER => {
                    Event::PhaseEnter { round, label: get_string(bytes, &mut pos, &mut strings)? }
                }
                DELTA_TAG_PHASE_EXIT => {
                    Event::PhaseExit { round, label: get_string(bytes, &mut pos, &mut strings)? }
                }
                DELTA_TAG_DECIDE => Event::Decide {
                    round,
                    node: NodeId(get_varint(bytes, &mut pos)? as u32),
                    value: get_varint(bytes, &mut pos)?,
                },
                other => return Err(format!("unknown delta tag {other}")),
            };
            out.push(ev);
        }
        Ok(out)
    }

    /// Decodes a stream straight to the v2 JSONL text a [`JsonlSink`]
    /// would have produced for the same events — header line included,
    /// byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns a message on a truncated or corrupt stream.
    pub fn decode_to_jsonl(bytes: &[u8]) -> Result<String, String> {
        let events = Self::decode(bytes)?;
        let mut text = format!("{{\"schema\":\"ftagg-trace\",\"v\":{TRACE_SCHEMA_VERSION}}}\n");
        for e in &events {
            text.push_str(&e.to_jsonl());
            text.push('\n');
        }
        Ok(text)
    }
}

impl TraceSink for DeltaSink {
    fn record(&mut self, e: &Event) {
        self.events += 1;
        match e {
            Event::Send { round, node, bits, logical, id, kind, causes } => {
                // Hot path (interned kind, short cause list): stage the
                // whole record on the stack, append with one memcpy.
                if causes.len() <= 8 {
                    if let Some(ki) = self.intern_index(kind) {
                        let mut s = Scratch::new();
                        s.put(DELTA_TAG_SEND);
                        s.put(zigzag(*round as i64 - self.prev_round as i64));
                        self.prev_round = *round;
                        s.put(u64::from(node.0));
                        s.put(*bits);
                        s.put(*logical);
                        s.put(zigzag(id.0 as i64 - self.prev_id as i64));
                        if id.0 != 0 {
                            self.prev_id = id.0;
                        }
                        s.put(ki as u64);
                        s.put(causes.len() as u64);
                        for c in causes {
                            s.put(zigzag(id.0 as i64 - c.0 as i64));
                        }
                        self.buf.extend_from_slice(s.bytes());
                        return;
                    }
                }
                put_varint(&mut self.buf, DELTA_TAG_SEND);
                self.put_round(*round);
                put_varint(&mut self.buf, u64::from(node.0));
                put_varint(&mut self.buf, *bits);
                put_varint(&mut self.buf, *logical);
                self.put_id(*id);
                self.put_string(kind);
                put_varint(&mut self.buf, causes.len() as u64);
                for c in causes {
                    put_varint(&mut self.buf, zigzag(id.0 as i64 - c.0 as i64));
                }
            }
            Event::Deliver { round, node, from, bits, id, src } => {
                let mut s = Scratch::new();
                s.put(DELTA_TAG_DELIVER);
                s.put(zigzag(*round as i64 - self.prev_round as i64));
                self.prev_round = *round;
                s.put(u64::from(node.0));
                s.put(u64::from(from.0));
                s.put(*bits);
                s.put(zigzag(id.0 as i64 - self.prev_id as i64));
                if id.0 != 0 {
                    self.prev_id = id.0;
                }
                // src: 0 = NONE, else 1 + zigzag distance — unambiguous
                // even for adversarial id/src pairs.
                if src.is_some() {
                    s.put(1 + zigzag(id.0 as i64 - src.0 as i64));
                } else {
                    s.put(0);
                }
                self.buf.extend_from_slice(s.bytes());
            }
            Event::Crash { round, node } => {
                put_varint(&mut self.buf, DELTA_TAG_CRASH);
                self.put_round(*round);
                put_varint(&mut self.buf, u64::from(node.0));
            }
            Event::PhaseEnter { round, label } => {
                put_varint(&mut self.buf, DELTA_TAG_PHASE_ENTER);
                self.put_round(*round);
                self.put_string(label);
            }
            Event::PhaseExit { round, label } => {
                put_varint(&mut self.buf, DELTA_TAG_PHASE_EXIT);
                self.put_round(*round);
                self.put_string(label);
            }
            Event::Decide { round, node, value } => {
                put_varint(&mut self.buf, DELTA_TAG_DECIDE);
                self.put_round(*round);
                put_varint(&mut self.buf, u64::from(node.0));
                put_varint(&mut self.buf, *value);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Event::send(1, NodeId(0), 8, 1));
        t.push(Event::Crash { round: 2, node: NodeId(3) });
        t.push(Event::send(2, NodeId(1), 4, 2));
        t.push(Event::send(5, NodeId(0), 2, 1));
        t
    }

    #[test]
    fn query_by_round_and_node() {
        let t = sample();
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.in_round(2).count(), 2);
        assert_eq!(t.of_node(NodeId(0)).count(), 2);
        assert_eq!(t.send_rounds(NodeId(0)), vec![1, 5]);
        assert_eq!(t.send_rounds(NodeId(3)), Vec::<Round>::new());
        assert_eq!(t.last_round(), Some(5));
        assert_eq!(Trace::new().last_round(), None);
        assert!(!t.truncated());
    }

    #[test]
    fn in_round_binary_search_matches_scan_on_multiround_trace() {
        // A multi-round trace with empty rounds, duplicate rounds, and all
        // event kinds; binary search must agree with a linear scan at every
        // round, including absent ones.
        let mut t = Trace::new();
        t.push(Event::PhaseEnter { round: 1, label: "warm".into() });
        t.push(Event::send(1, NodeId(0), 3, 1));
        t.push(Event::deliver(2, NodeId(1), NodeId(0), 3));
        t.push(Event::send(2, NodeId(1), 5, 1));
        t.push(Event::Crash { round: 4, node: NodeId(2) });
        t.push(Event::PhaseExit { round: 4, label: "warm".into() });
        t.push(Event::send(7, NodeId(0), 1, 1));
        t.push(Event::Decide { round: 7, node: NodeId(0), value: 9 });
        for round in 0..10 {
            let fast: Vec<&Event> = t.in_round(round).collect();
            let slow: Vec<&Event> = t.events().iter().filter(|e| e.round() == round).collect();
            assert_eq!(fast, slow, "round {round}");
        }
        assert_eq!(t.in_round(2).count(), 2);
        assert_eq!(t.in_round(3).count(), 0);
        assert_eq!(t.in_round(7).count(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "round order")]
    fn push_rejects_out_of_order_rounds_in_debug() {
        let mut t = Trace::new();
        t.push(Event::send(5, NodeId(0), 1, 1));
        t.push(Event::send(4, NodeId(0), 1, 1));
    }

    #[test]
    fn render_mentions_rounds_and_crashes() {
        let out = sample().render();
        assert!(out.contains("-- round 1 --"));
        assert!(out.contains("n3 CRASHED"));
        assert!(out.contains("n1 sends 2 msg(s), 4 bits"));
    }

    #[test]
    fn render_shows_message_kinds() {
        let mut t = Trace::new();
        t.push(Event::Send {
            round: 1,
            node: NodeId(0),
            bits: 7,
            logical: 1,
            id: EventId(1),
            kind: "tree-construct".into(),
            causes: Vec::new(),
        });
        assert!(t.render().contains("7 bits [tree-construct]"));
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let mut ring = RingSink::new(2);
        for r in 1..=5 {
            ring.record(&Event::send(r, NodeId(0), r, 1));
        }
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.seen(), 5);
        let rounds: Vec<Round> = ring.events().map(Event::round).collect();
        assert_eq!(rounds, vec![4, 5]);
        assert_eq!(ring.to_trace().last_round(), Some(5));
        // Eviction marks the extracted trace truncated; a ring that never
        // dropped yields a clean trace.
        assert!(ring.to_trace().truncated());
        let mut small = RingSink::new(8);
        small.record(&Event::send(1, NodeId(0), 1, 1));
        assert!(!small.to_trace().truncated());
        // Capacity 0 only counts.
        let mut zero = RingSink::new(0);
        zero.record(&Event::Crash { round: 1, node: NodeId(0) });
        assert_eq!(zero.seen(), 1);
        assert_eq!(zero.events().count(), 0);
    }

    #[test]
    fn jsonl_roundtrips_every_event_kind() {
        let events = vec![
            Event::PhaseEnter { round: 1, label: "AGG \"q\"\\x".into() },
            Event::Send {
                round: 1,
                node: NodeId(0),
                bits: 8,
                logical: 2,
                id: EventId(1),
                kind: "tree-construct".into(),
                causes: Vec::new(),
            },
            Event::Deliver {
                round: 2,
                node: NodeId(1),
                from: NodeId(0),
                bits: 8,
                id: EventId(2),
                src: EventId(1),
            },
            Event::Send {
                round: 2,
                node: NodeId(1),
                bits: 4,
                logical: 1,
                id: EventId(3),
                kind: String::new(),
                causes: vec![EventId(2)],
            },
            Event::Crash { round: 3, node: NodeId(7) },
            Event::PhaseExit { round: 4, label: "AGG \"q\"\\x".into() },
            Event::Decide { round: 5, node: NodeId(0), value: u64::MAX },
        ];
        let mut sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.record(e);
        }
        assert_eq!(sink.lines(), 1 + events.len() as u64);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("{\"schema\":\"ftagg-trace\",\"v\":2}\n"));
        let back = Trace::from_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.events(), events.as_slice());
        assert_eq!(back.max_event_id(), 3);
    }

    #[test]
    fn from_jsonl_accepts_v1_with_empty_lineage() {
        // A v1 trace (as PR 2/3 wrote them): no ids, kinds, or causes.
        let v1 = "{\"schema\":\"ftagg-trace\",\"v\":1}\n\
                  {\"ev\":\"send\",\"r\":1,\"n\":0,\"bits\":7,\"logical\":1}\n\
                  {\"ev\":\"deliver\",\"r\":2,\"n\":1,\"from\":0,\"bits\":7}\n";
        let t = Trace::from_jsonl(v1.as_bytes()).unwrap();
        assert_eq!(t.events().len(), 2);
        match &t.events()[0] {
            Event::Send { id, kind, causes, .. } => {
                assert_eq!(*id, EventId::NONE);
                assert!(kind.is_empty());
                assert!(causes.is_empty());
            }
            other => panic!("expected send, got {other:?}"),
        }
        match &t.events()[1] {
            Event::Deliver { id, src, .. } => {
                assert_eq!(*id, EventId::NONE);
                assert_eq!(*src, EventId::NONE);
            }
            other => panic!("expected deliver, got {other:?}"),
        }
    }

    #[test]
    fn from_jsonl_rejects_bad_input() {
        assert!(Trace::from_jsonl("".as_bytes()).is_err());
        assert!(Trace::from_jsonl("{\"ev\":\"send\"}\n".as_bytes()).is_err());
        let wrong_version = "{\"schema\":\"ftagg-trace\",\"v\":999}\n";
        assert!(Trace::from_jsonl(wrong_version.as_bytes()).unwrap_err().contains("v999"));
        let bad_line = "{\"schema\":\"ftagg-trace\",\"v\":2}\n{\"ev\":\"warp\",\"r\":1}\n";
        assert!(Trace::from_jsonl(bad_line.as_bytes()).unwrap_err().contains("warp"));
        let missing_field = "{\"schema\":\"ftagg-trace\",\"v\":2}\n{\"ev\":\"send\",\"r\":1}\n";
        assert!(Trace::from_jsonl(missing_field.as_bytes()).is_err());
        let bad_causes = "{\"schema\":\"ftagg-trace\",\"v\":2}\n{\"ev\":\"send\",\"r\":1,\"n\":0,\"bits\":1,\"logical\":1,\"id\":1,\"causes\":[1,x]}\n";
        assert!(Trace::from_jsonl(bad_causes.as_bytes()).unwrap_err().contains("causes"));
    }

    #[test]
    fn causes_array_roundtrips_multiple_ids() {
        // json_raw stops at the first comma; the dedicated array parser
        // must not.
        let e = Event::Send {
            round: 3,
            node: NodeId(2),
            bits: 9,
            logical: 1,
            id: EventId(7),
            kind: "veri".into(),
            causes: vec![EventId(4), EventId(5), EventId(6)],
        };
        let line = e.to_jsonl();
        assert!(line.contains("\"causes\":[4,5,6]"));
        assert_eq!(Event::from_jsonl(&line).unwrap(), e);
    }

    #[test]
    fn absorb_shifted_offsets_rounds_and_ids() {
        let mut base = Trace::new();
        base.push(Event::Send {
            round: 1,
            node: NodeId(0),
            bits: 2,
            logical: 1,
            id: EventId(1),
            kind: String::new(),
            causes: Vec::new(),
        });
        let mut sub = Trace::new();
        sub.push(Event::Send {
            round: 1,
            node: NodeId(1),
            bits: 3,
            logical: 1,
            id: EventId(1),
            kind: String::new(),
            causes: Vec::new(),
        });
        sub.push(Event::Deliver {
            round: 2,
            node: NodeId(0),
            from: NodeId(1),
            bits: 3,
            id: EventId(2),
            src: EventId(1),
        });
        sub.push(Event::Decide { round: 2, node: NodeId(0), value: 4 });
        base.absorb_shifted(&sub, 10);
        let ev = base.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[1].round(), 11);
        match &ev[2] {
            Event::Deliver { round, id, src, .. } => {
                assert_eq!(*round, 12);
                // Sub ids shifted past base's max id (1).
                assert_eq!(*id, EventId(3));
                assert_eq!(*src, EventId(2));
            }
            other => panic!("expected deliver, got {other:?}"),
        }
        assert_eq!(ev[3].round(), 12);
        assert_eq!(base.max_event_id(), 3);
        // NONE ids stay NONE; truncation is sticky.
        let mut dirty = Trace::new();
        dirty.push(Event::deliver(1, NodeId(0), NodeId(1), 1));
        dirty.set_truncated(true);
        base.absorb_shifted(&dirty, 20);
        assert!(base.truncated());
        match base.events().last().unwrap() {
            Event::Deliver { id, src, .. } => {
                assert_eq!(*id, EventId::NONE);
                assert_eq!(*src, EventId::NONE);
            }
            other => panic!("expected deliver, got {other:?}"),
        }
    }

    #[test]
    fn replay_metrics_reconstructs_counters_and_phases() {
        let mut t = Trace::new();
        t.push(Event::PhaseEnter { round: 1, label: "AGG".into() });
        t.push(Event::send(1, NodeId(0), 10, 1));
        t.push(Event::send(2, NodeId(2), 4, 2));
        t.push(Event::PhaseExit { round: 3, label: "AGG".into() });
        let m = t.replay_metrics();
        assert_eq!(m.bits_of(NodeId(0)), 10);
        assert_eq!(m.bits_of(NodeId(2)), 4);
        assert_eq!(m.max_bits(), 10);
        assert_eq!(m.total_bits(), 14);
        let phases = m.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].label, "AGG");
        assert_eq!((phases[0].start, phases[0].end), (1, 3));
        assert_eq!(phases[0].bits, 14);
    }

    #[test]
    fn per_kind_sends_in_one_round_replay_to_the_same_totals() {
        // The engine splits a node's round broadcast into one Send per
        // kind; replayed metrics must still see the round total.
        let mut t = Trace::new();
        t.push(Event::Send {
            round: 1,
            node: NodeId(0),
            bits: 5,
            logical: 1,
            id: EventId(1),
            kind: "tree-construct".into(),
            causes: Vec::new(),
        });
        t.push(Event::Send {
            round: 1,
            node: NodeId(0),
            bits: 3,
            logical: 2,
            id: EventId(2),
            kind: "aggregate".into(),
            causes: Vec::new(),
        });
        let m = t.replay_metrics();
        assert_eq!(m.bits_of(NodeId(0)), 8);
        assert_eq!(m.sends_of(NodeId(0)), 3);
        assert_eq!(t.send_rounds(NodeId(0)), vec![1]);
    }
}
