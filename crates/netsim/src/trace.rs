//! Execution tracing: an optional per-round event log and pluggable sinks.
//!
//! Protocol debugging and the experiment harness sometimes need to *see*
//! an execution — who broadcast in which round, what was delivered where,
//! when crashes took effect, which protocol phase the traffic belongs to.
//! The engine emits [`Event`]s into a [`TraceSink`] when tracing is enabled
//! (it is off by default; the hot path pays one branch). Three sinks ship
//! with the crate:
//!
//! - [`Trace`] — the in-memory, queryable event log;
//! - [`RingSink`] — a bounded ring buffer keeping the most recent events,
//!   for long executions where only the tail matters;
//! - [`JsonlSink`] — line-delimited JSON for offline analysis; the schema
//!   is versioned ([`TRACE_SCHEMA_VERSION`]) and read back by
//!   [`Trace::from_jsonl`].
//!
//! The observability layer is **passive**: sinks only observe the events
//! the engine hands them and can never perturb an execution (pinned by
//! `tests/observer_noninterference.rs`).

use crate::adversary::Round;
use crate::graph::NodeId;
use std::any::Any;
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};

/// Version of the JSONL trace schema emitted by [`JsonlSink`] and asserted
/// by [`Trace::from_jsonl`]. Bump when the line format changes; the golden
/// snapshot test in `tests/golden_trace.rs` pins the on-disk format of the
/// current version.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A node locally broadcast `logical` combined messages of `bits`
    /// total bits in `round`.
    Send {
        /// The round of the broadcast.
        round: Round,
        /// The broadcasting node.
        node: NodeId,
        /// Total encoded bits.
        bits: u64,
        /// Number of logical messages combined.
        logical: u64,
    },
    /// A live node received one logical message in `round` (broadcast by
    /// `from` in the previous round). Dead nodes receive nothing.
    Deliver {
        /// The round of the delivery.
        round: Round,
        /// The receiving node.
        node: NodeId,
        /// The neighbor that broadcast the message.
        from: NodeId,
        /// Encoded bits of the delivered message.
        bits: u64,
    },
    /// A node became dead at the start of `round` (first round it did not
    /// execute).
    Crash {
        /// The first dead round.
        round: Round,
        /// The crashed node.
        node: NodeId,
    },
    /// A protocol phase (AGG, VERI, an Algorithm 1 interval, …) begins at
    /// `round`. Emitted by the harness, mirroring
    /// [`crate::metrics::Metrics`] phase attribution.
    PhaseEnter {
        /// First round of the phase.
        round: Round,
        /// Phase label.
        label: String,
    },
    /// The innermost open phase ends at `round` (inclusive).
    PhaseExit {
        /// Last round of the phase.
        round: Round,
        /// Phase label.
        label: String,
    },
    /// A node decided an output (normally the root, with the aggregate).
    Decide {
        /// The round of the decision.
        round: Round,
        /// The deciding node.
        node: NodeId,
        /// The decided value.
        value: u64,
    },
}

impl Event {
    /// The round the event belongs to.
    pub fn round(&self) -> Round {
        match self {
            Event::Send { round, .. }
            | Event::Deliver { round, .. }
            | Event::Crash { round, .. }
            | Event::PhaseEnter { round, .. }
            | Event::PhaseExit { round, .. }
            | Event::Decide { round, .. } => *round,
        }
    }

    /// The node the event concerns, if any (phase markers are global).
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Event::Send { node, .. }
            | Event::Deliver { node, .. }
            | Event::Crash { node, .. }
            | Event::Decide { node, .. } => Some(*node),
            Event::PhaseEnter { .. } | Event::PhaseExit { .. } => None,
        }
    }

    /// Stable lowercase tag naming the event kind (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Send { .. } => "send",
            Event::Deliver { .. } => "deliver",
            Event::Crash { .. } => "crash",
            Event::PhaseEnter { .. } => "phase_enter",
            Event::PhaseExit { .. } => "phase_exit",
            Event::Decide { .. } => "decide",
        }
    }

    /// The canonical JSONL encoding of this event (one line, no newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            Event::Send { round, node, bits, logical } => format!(
                "{{\"ev\":\"send\",\"r\":{round},\"n\":{},\"bits\":{bits},\"logical\":{logical}}}",
                node.0
            ),
            Event::Deliver { round, node, from, bits } => format!(
                "{{\"ev\":\"deliver\",\"r\":{round},\"n\":{},\"from\":{},\"bits\":{bits}}}",
                node.0, from.0
            ),
            Event::Crash { round, node } => {
                format!("{{\"ev\":\"crash\",\"r\":{round},\"n\":{}}}", node.0)
            }
            Event::PhaseEnter { round, label } => format!(
                "{{\"ev\":\"phase_enter\",\"r\":{round},\"label\":\"{}\"}}",
                escape_json(label)
            ),
            Event::PhaseExit { round, label } => format!(
                "{{\"ev\":\"phase_exit\",\"r\":{round},\"label\":\"{}\"}}",
                escape_json(label)
            ),
            Event::Decide { round, node, value } => {
                format!("{{\"ev\":\"decide\",\"r\":{round},\"n\":{},\"value\":{value}}}", node.0)
            }
        }
    }

    /// Parses one JSONL event line (the inverse of [`Event::to_jsonl`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_jsonl(line: &str) -> Result<Event, String> {
        let ev = json_str(line, "ev").ok_or_else(|| format!("missing \"ev\" in {line:?}"))?;
        let round = json_u64(line, "r")?;
        let node = |key: &str| -> Result<NodeId, String> {
            Ok(NodeId(u32::try_from(json_u64(line, key)?).map_err(|_| "node id overflow")?))
        };
        match ev.as_str() {
            "send" => Ok(Event::Send {
                round,
                node: node("n")?,
                bits: json_u64(line, "bits")?,
                logical: json_u64(line, "logical")?,
            }),
            "deliver" => Ok(Event::Deliver {
                round,
                node: node("n")?,
                from: node("from")?,
                bits: json_u64(line, "bits")?,
            }),
            "crash" => Ok(Event::Crash { round, node: node("n")? }),
            "phase_enter" => Ok(Event::PhaseEnter {
                round,
                label: json_str(line, "label").ok_or("missing \"label\"")?,
            }),
            "phase_exit" => Ok(Event::PhaseExit {
                round,
                label: json_str(line, "label").ok_or("missing \"label\"")?,
            }),
            "decide" => {
                Ok(Event::Decide { round, node: node("n")?, value: json_u64(line, "value")? })
            }
            other => Err(format!("unknown event kind '{other}'")),
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                        out.push(c);
                    }
                }
                Some(c) => out.push(c),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts the raw text of `"key":<value>` from a single-line JSON object.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // A string value: scan to the closing unescaped quote.
        let mut prev_backslash = false;
        for (i, c) in stripped.char_indices() {
            match c {
                '\\' if !prev_backslash => prev_backslash = true,
                '"' if !prev_backslash => return Some(&stripped[..i]),
                _ => prev_backslash = false,
            }
        }
        None
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim())
    }
}

fn json_u64(line: &str, key: &str) -> Result<u64, String> {
    json_raw(line, key)
        .ok_or_else(|| format!("missing \"{key}\" in {line:?}"))?
        .parse()
        .map_err(|_| format!("bad \"{key}\" in {line:?}"))
}

fn json_str(line: &str, key: &str) -> Option<String> {
    json_raw(line, key).map(unescape_json)
}

/// A consumer of engine events. The engine holds at most one sink and pays
/// a single branch per event site when no sink is installed; everything a
/// sink does is invisible to the execution it observes.
pub trait TraceSink: Any {
    /// Receives one event. Events arrive in non-decreasing round order.
    fn record(&mut self, e: &Event);

    /// Upcast for downcasting a boxed sink back to its concrete type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An append-only event log ordered by round.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event (engine-internal). Events must arrive in
    /// non-decreasing round order — the engine guarantees it, and
    /// [`Trace::in_round`] relies on it to binary-search.
    pub fn push(&mut self, e: Event) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.round() <= e.round()),
            "events must be appended in round order ({} after {})",
            e.round(),
            self.events.last().map_or(0, Event::round),
        );
        self.events.push(e);
    }

    /// All events in append (= round) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of one round, located by binary search over the round-ordered
    /// event vec (O(log |events| + answer), not a full scan).
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &Event> {
        let lo = self.events.partition_point(|e| e.round() < round);
        let hi = self.events[lo..].partition_point(|e| e.round() <= round) + lo;
        self.events[lo..hi].iter()
    }

    /// Events concerning one node.
    pub fn of_node(&self, node: NodeId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.node() == Some(node))
    }

    /// Rounds in which `node` broadcast anything, ascending.
    pub fn send_rounds(&self, node: NodeId) -> Vec<Round> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Send { round, node: n, .. } if *n == node => Some(*round),
                _ => None,
            })
            .collect()
    }

    /// The last round with any event, if non-empty.
    pub fn last_round(&self) -> Option<Round> {
        // Events are round-ordered, so the maximum is the last one.
        self.events.last().map(Event::round)
    }

    /// Reconstructs the communication [`crate::metrics::Metrics`] this
    /// trace implies: per-node and per-round counters from `Send` events,
    /// phase spans from the phase markers. The node-count is inferred from
    /// the largest id mentioned. Offline reports use this to analyze a
    /// saved JSONL trace exactly as if the run were live.
    pub fn replay_metrics(&self) -> crate::metrics::Metrics {
        let n =
            self.events.iter().filter_map(|e| e.node()).map(|v| v.index() + 1).max().unwrap_or(0);
        let mut m = crate::metrics::Metrics::new(n);
        for e in &self.events {
            m.note_round(e.round());
            match e {
                Event::Send { round, node, bits, logical } => {
                    m.record_send(*node, *round, *bits, *logical);
                }
                Event::PhaseEnter { round, label } => m.enter_phase_at(label, *round),
                Event::PhaseExit { round, .. } => {
                    let _ = m.exit_phase_at(*round);
                }
                _ => {}
            }
        }
        m
    }

    /// Parses a JSONL trace (as written by [`JsonlSink`]), validating the
    /// schema header.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure, a missing/mismatched schema
    /// header, or a malformed event line.
    pub fn from_jsonl(reader: impl BufRead) -> Result<Trace, String> {
        let mut trace = Trace::new();
        let mut saw_header = false;
        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
            if line.trim().is_empty() {
                continue;
            }
            if !saw_header {
                let schema = json_str(&line, "schema")
                    .ok_or_else(|| format!("line 1 is not a schema header: {line:?}"))?;
                if schema != "ftagg-trace" {
                    return Err(format!("unknown schema '{schema}'"));
                }
                let v = json_u64(&line, "v")?;
                if v != u64::from(TRACE_SCHEMA_VERSION) {
                    return Err(format!(
                        "trace schema v{v} unsupported (reader speaks v{TRACE_SCHEMA_VERSION})"
                    ));
                }
                saw_header = true;
                continue;
            }
            trace.push(Event::from_jsonl(&line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        if !saw_header {
            return Err("empty trace file (no schema header)".into());
        }
        Ok(trace)
    }

    /// Renders a human-readable per-round summary (for harness output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut cur = 0;
        for e in &self.events {
            if e.round() != cur {
                cur = e.round();
                let _ = writeln!(out, "-- round {cur} --");
            }
            match e {
                Event::Send { node, bits, logical, .. } => {
                    let _ = writeln!(out, "  {node:?} sends {logical} msg(s), {bits} bits");
                }
                Event::Deliver { node, from, bits, .. } => {
                    let _ = writeln!(out, "  {node:?} <- {from:?} ({bits} bits)");
                }
                Event::Crash { node, .. } => {
                    let _ = writeln!(out, "  {node:?} CRASHED");
                }
                Event::PhaseEnter { label, .. } => {
                    let _ = writeln!(out, "  == phase {label} begins ==");
                }
                Event::PhaseExit { label, .. } => {
                    let _ = writeln!(out, "  == phase {label} ends ==");
                }
                Event::Decide { node, value, .. } => {
                    let _ = writeln!(out, "  {node:?} DECIDES {value}");
                }
            }
        }
        out
    }
}

impl TraceSink for Trace {
    fn record(&mut self, e: &Event) {
        self.push(e.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A bounded ring-buffer sink: keeps the most recent `capacity` events and
/// counts the rest, for long executions where holding the full log would
/// dominate memory.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping at most `capacity` events (capacity 0 keeps none and
    /// only counts).
    pub fn new(capacity: usize) -> Self {
        RingSink { capacity, events: VecDeque::with_capacity(capacity.min(1024)), dropped: 0 }
    }

    /// The retained (most recent) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events evicted to honor the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events observed (retained + dropped).
    pub fn seen(&self) -> u64 {
        self.dropped + self.events.len() as u64
    }

    /// The retained tail as a queryable [`Trace`].
    pub fn to_trace(&self) -> Trace {
        let mut t = Trace::new();
        for e in &self.events {
            t.push(e.clone());
        }
        t
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, e: &Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A line-delimited JSON sink for offline analysis. The first line is a
/// schema header (`{"schema":"ftagg-trace","v":1}`); every following line
/// is one [`Event`] (see [`Event::to_jsonl`]). Read back with
/// [`Trace::from_jsonl`].
///
/// I/O errors are latched: the first failure stops further writes and is
/// surfaced by [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write + 'static> {
    writer: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write + 'static> JsonlSink<W> {
    /// Wraps `writer`, emitting the schema header immediately.
    pub fn new(mut writer: W) -> Self {
        let error =
            writeln!(writer, "{{\"schema\":\"ftagg-trace\",\"v\":{TRACE_SCHEMA_VERSION}}}").err();
        JsonlSink { writer, lines: 1, error }
    }

    /// Event lines written so far, including the header.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first error any write hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, e: &Event) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.writer, "{}", e.to_jsonl()) {
            Ok(()) => self.lines += 1,
            Err(err) => self.error = Some(err),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Event::Send { round: 1, node: NodeId(0), bits: 8, logical: 1 });
        t.push(Event::Crash { round: 2, node: NodeId(3) });
        t.push(Event::Send { round: 2, node: NodeId(1), bits: 4, logical: 2 });
        t.push(Event::Send { round: 5, node: NodeId(0), bits: 2, logical: 1 });
        t
    }

    #[test]
    fn query_by_round_and_node() {
        let t = sample();
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.in_round(2).count(), 2);
        assert_eq!(t.of_node(NodeId(0)).count(), 2);
        assert_eq!(t.send_rounds(NodeId(0)), vec![1, 5]);
        assert_eq!(t.send_rounds(NodeId(3)), Vec::<Round>::new());
        assert_eq!(t.last_round(), Some(5));
        assert_eq!(Trace::new().last_round(), None);
    }

    #[test]
    fn in_round_binary_search_matches_scan_on_multiround_trace() {
        // A multi-round trace with empty rounds, duplicate rounds, and all
        // event kinds; binary search must agree with a linear scan at every
        // round, including absent ones.
        let mut t = Trace::new();
        t.push(Event::PhaseEnter { round: 1, label: "warm".into() });
        t.push(Event::Send { round: 1, node: NodeId(0), bits: 3, logical: 1 });
        t.push(Event::Deliver { round: 2, node: NodeId(1), from: NodeId(0), bits: 3 });
        t.push(Event::Send { round: 2, node: NodeId(1), bits: 5, logical: 1 });
        t.push(Event::Crash { round: 4, node: NodeId(2) });
        t.push(Event::PhaseExit { round: 4, label: "warm".into() });
        t.push(Event::Send { round: 7, node: NodeId(0), bits: 1, logical: 1 });
        t.push(Event::Decide { round: 7, node: NodeId(0), value: 9 });
        for round in 0..10 {
            let fast: Vec<&Event> = t.in_round(round).collect();
            let slow: Vec<&Event> = t.events().iter().filter(|e| e.round() == round).collect();
            assert_eq!(fast, slow, "round {round}");
        }
        assert_eq!(t.in_round(2).count(), 2);
        assert_eq!(t.in_round(3).count(), 0);
        assert_eq!(t.in_round(7).count(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "round order")]
    fn push_rejects_out_of_order_rounds_in_debug() {
        let mut t = Trace::new();
        t.push(Event::Send { round: 5, node: NodeId(0), bits: 1, logical: 1 });
        t.push(Event::Send { round: 4, node: NodeId(0), bits: 1, logical: 1 });
    }

    #[test]
    fn render_mentions_rounds_and_crashes() {
        let out = sample().render();
        assert!(out.contains("-- round 1 --"));
        assert!(out.contains("n3 CRASHED"));
        assert!(out.contains("n1 sends 2 msg(s), 4 bits"));
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let mut ring = RingSink::new(2);
        for r in 1..=5 {
            ring.record(&Event::Send { round: r, node: NodeId(0), bits: r, logical: 1 });
        }
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.seen(), 5);
        let rounds: Vec<Round> = ring.events().map(Event::round).collect();
        assert_eq!(rounds, vec![4, 5]);
        assert_eq!(ring.to_trace().last_round(), Some(5));
        // Capacity 0 only counts.
        let mut zero = RingSink::new(0);
        zero.record(&Event::Crash { round: 1, node: NodeId(0) });
        assert_eq!(zero.seen(), 1);
        assert_eq!(zero.events().count(), 0);
    }

    #[test]
    fn jsonl_roundtrips_every_event_kind() {
        let events = vec![
            Event::PhaseEnter { round: 1, label: "AGG \"q\"\\x".into() },
            Event::Send { round: 1, node: NodeId(0), bits: 8, logical: 2 },
            Event::Deliver { round: 2, node: NodeId(1), from: NodeId(0), bits: 8 },
            Event::Crash { round: 3, node: NodeId(7) },
            Event::PhaseExit { round: 4, label: "AGG \"q\"\\x".into() },
            Event::Decide { round: 5, node: NodeId(0), value: u64::MAX },
        ];
        let mut sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.record(e);
        }
        assert_eq!(sink.lines(), 1 + events.len() as u64);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("{\"schema\":\"ftagg-trace\",\"v\":1}\n"));
        let back = Trace::from_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.events(), events.as_slice());
    }

    #[test]
    fn from_jsonl_rejects_bad_input() {
        assert!(Trace::from_jsonl("".as_bytes()).is_err());
        assert!(Trace::from_jsonl("{\"ev\":\"send\"}\n".as_bytes()).is_err());
        let wrong_version = "{\"schema\":\"ftagg-trace\",\"v\":999}\n";
        assert!(Trace::from_jsonl(wrong_version.as_bytes()).unwrap_err().contains("v999"));
        let bad_line = "{\"schema\":\"ftagg-trace\",\"v\":1}\n{\"ev\":\"warp\",\"r\":1}\n";
        assert!(Trace::from_jsonl(bad_line.as_bytes()).unwrap_err().contains("warp"));
        let missing_field = "{\"schema\":\"ftagg-trace\",\"v\":1}\n{\"ev\":\"send\",\"r\":1}\n";
        assert!(Trace::from_jsonl(missing_field.as_bytes()).is_err());
    }

    #[test]
    fn replay_metrics_reconstructs_counters_and_phases() {
        let mut t = Trace::new();
        t.push(Event::PhaseEnter { round: 1, label: "AGG".into() });
        t.push(Event::Send { round: 1, node: NodeId(0), bits: 10, logical: 1 });
        t.push(Event::Send { round: 2, node: NodeId(2), bits: 4, logical: 2 });
        t.push(Event::PhaseExit { round: 3, label: "AGG".into() });
        let m = t.replay_metrics();
        assert_eq!(m.bits_of(NodeId(0)), 10);
        assert_eq!(m.bits_of(NodeId(2)), 4);
        assert_eq!(m.max_bits(), 10);
        assert_eq!(m.total_bits(), 14);
        let phases = m.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].label, "AGG");
        assert_eq!((phases[0].start, phases[0].end), (1, 3));
        assert_eq!(phases[0].bits, 14);
    }
}
