//! Execution tracing: an optional per-round event log.
//!
//! Protocol debugging and the experiment harness sometimes need to *see*
//! an execution — who broadcast in which round, what was delivered where,
//! when crashes took effect. [`Trace`] is a compact, queryable event log
//! the engine fills when tracing is enabled (it is off by default; the
//! hot path pays one branch).

use crate::adversary::Round;
use crate::graph::NodeId;

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A node locally broadcast `logical` combined messages of `bits`
    /// total bits in `round`.
    Send {
        /// The round of the broadcast.
        round: Round,
        /// The broadcasting node.
        node: NodeId,
        /// Total encoded bits.
        bits: u64,
        /// Number of logical messages combined.
        logical: u64,
    },
    /// A node became dead at the start of `round` (first round it did not
    /// execute).
    Crash {
        /// The first dead round.
        round: Round,
        /// The crashed node.
        node: NodeId,
    },
}

impl Event {
    /// The round the event belongs to.
    pub fn round(&self) -> Round {
        match self {
            Event::Send { round, .. } | Event::Crash { round, .. } => *round,
        }
    }

    /// The node the event concerns.
    pub fn node(&self) -> NodeId {
        match self {
            Event::Send { node, .. } | Event::Crash { node, .. } => *node,
        }
    }
}

/// An append-only event log ordered by round.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event (engine-internal).
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// All events in append (= round) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of one round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.round() == round)
    }

    /// Events concerning one node.
    pub fn of_node(&self, node: NodeId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.node() == node)
    }

    /// Rounds in which `node` broadcast anything, ascending.
    pub fn send_rounds(&self, node: NodeId) -> Vec<Round> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Send { round, node: n, .. } if *n == node => Some(*round),
                _ => None,
            })
            .collect()
    }

    /// The last round with any event, if non-empty.
    pub fn last_round(&self) -> Option<Round> {
        self.events.iter().map(Event::round).max()
    }

    /// Renders a human-readable per-round summary (for harness output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut cur = 0;
        for e in &self.events {
            if e.round() != cur {
                cur = e.round();
                let _ = writeln!(out, "-- round {cur} --");
            }
            match e {
                Event::Send { node, bits, logical, .. } => {
                    let _ = writeln!(out, "  {node:?} sends {logical} msg(s), {bits} bits");
                }
                Event::Crash { node, .. } => {
                    let _ = writeln!(out, "  {node:?} CRASHED");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Event::Send { round: 1, node: NodeId(0), bits: 8, logical: 1 });
        t.push(Event::Crash { round: 2, node: NodeId(3) });
        t.push(Event::Send { round: 2, node: NodeId(1), bits: 4, logical: 2 });
        t.push(Event::Send { round: 5, node: NodeId(0), bits: 2, logical: 1 });
        t
    }

    #[test]
    fn query_by_round_and_node() {
        let t = sample();
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.in_round(2).count(), 2);
        assert_eq!(t.of_node(NodeId(0)).count(), 2);
        assert_eq!(t.send_rounds(NodeId(0)), vec![1, 5]);
        assert_eq!(t.send_rounds(NodeId(3)), Vec::<Round>::new());
        assert_eq!(t.last_round(), Some(5));
        assert_eq!(Trace::new().last_round(), None);
    }

    #[test]
    fn render_mentions_rounds_and_crashes() {
        let out = sample().render();
        assert!(out.contains("-- round 1 --"));
        assert!(out.contains("n3 CRASHED"));
        assert!(out.contains("n1 sends 2 msg(s), 4 bits"));
    }
}
