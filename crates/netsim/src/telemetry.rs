//! # Scale-proof telemetry: counters, sampled tracing, flight recorder
//!
//! Observability for the regime where full tracing is impossible. At
//! N = 2²⁰ the engines move hundreds of millions of deliveries per run;
//! a [`TraceSink`](crate::TraceSink) that touches every one of them costs
//! more than the simulation itself. This module layers three cheaper
//! instruments, each with a stated fidelity:
//!
//! - **[`TelemetryHub`]** — a registry of atomic [`Counter`]s/[`Gauge`]s
//!   plus mergeable log₂-bucket + reservoir histograms ([`TeleHist`]).
//!   Fed per *round* (not per delivery) from the engines' round stream
//!   via [`round_observer`], so the per-delivery cost is exactly zero.
//!   Exported as Prometheus-style text or JSON.
//! - **[`SamplingSink`]** — wraps any sink and forwards the events of a
//!   seed-deterministic 1-in-k subset of nodes, stratified per message
//!   kind, while metering the full stream; [`SamplingSink::factors`]
//!   returns the unbiased scale-up factor and the relative error of each
//!   stratum so reports can state their confidence instead of presenting
//!   samples as exact.
//! - **[`FlightRecorder`]** — a black box: a bounded ring of the last R
//!   rounds of full-fidelity events, delta-encoded per round with
//!   [`DeltaSink`], dumped as a versioned v2 JSONL artifact on a watchdog
//!   violation, a mining counterexample, or a panic
//!   ([`FlightRecorderHandle::install_panic_hook`]). A 16-second
//!   million-node run that trips an invariant leaves a replayable tail
//!   instead of nothing.
//!
//! [`TeeSink`] fans one engine event stream out to several sinks (e.g.
//! watchdog + flight recorder), and every sink here answers
//! [`TraceSink::wants_delivers`](crate::TraceSink::wants_delivers) so the
//! engines can skip per-delivery event construction entirely when no
//! installed sink needs it — that interest bit is what keeps the recorded
//! million-node run within a few percent of the blind one.

use crate::adversary::Round;
use crate::graph::NodeId;
use crate::runner::Histogram;
use crate::soa::RoundFlow;
use crate::trace::{DeltaSink, Event, TraceSink, TRACE_SCHEMA_VERSION};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. Used for
/// every deterministic "coin" in this module (reservoir replacement,
/// node admission) so results are identical across runs and platforms.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a name: stable seeds for named histograms.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Poison-tolerant lock: the flight-recorder panic hook must read state
/// *after* an arbitrary panic, so a poisoned mutex yields its data.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether `name` is a valid Prometheus metric identifier
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`). Everything this crate registers in a
/// [`TelemetryHub`] must pass, or the exported exposition text is not
/// scrapeable; the CLI's export golden test lints every exported name
/// through this.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut bytes = name.bytes();
    let Some(first) = bytes.next() else { return false };
    let head_ok = first.is_ascii_alphabetic() || first == b'_' || first == b':';
    head_ok && bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

// ---------------------------------------------------------------------------
// Counters, gauges, histograms
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge with a running-maximum helper.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger.
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How many raw samples a [`TeleHist`] reservoir keeps (quantiles are
/// exact up to this many samples, estimated past it).
pub const RESERVOIR_CAP: usize = 256;

/// A deterministic Algorithm-R reservoir over `u64` samples.
///
/// The replacement coin for sample `i` is `mix64(seed ^ i) % i`, so the
/// kept subset depends only on the seed and the sample order — never on
/// wall clock or a global RNG — and two runs of the same workload keep
/// byte-identical reservoirs.
#[derive(Clone, Debug)]
pub struct Reservoir {
    cap: usize,
    seed: u64,
    seen: u64,
    samples: Vec<u64>,
}

impl Reservoir {
    /// An empty reservoir holding at most `cap` samples.
    pub fn new(cap: usize, seed: u64) -> Reservoir {
        Reservoir { cap: cap.max(1), seed, seen: 0, samples: Vec::new() }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(v);
        } else {
            let j = mix64(self.seed ^ self.seen) % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = v;
            }
        }
    }

    /// Total samples offered (kept or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The kept samples, in arrival/replacement order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// The `q`-quantile over the *kept* samples (`0 < q <= 1`); `None`
    /// when empty. Exact while `seen() <= cap`, an estimate after.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Feeds every kept sample of `other` through this reservoir's own
    /// deterministic replacement. (A merge of saturated reservoirs is an
    /// approximation — fine for dashboards, not for exact gates.)
    pub fn merge(&mut self, other: &Reservoir) {
        for &v in &other.samples {
            self.record(v);
        }
    }
}

/// A mergeable histogram cell: log₂ buckets (full range, 2× bucket
/// resolution) plus a bounded reservoir (exact small-count quantiles).
#[derive(Clone, Debug)]
pub struct TeleHist {
    hist: Histogram,
    reservoir: Reservoir,
}

impl TeleHist {
    /// An empty cell whose reservoir coins derive from `seed`.
    pub fn new(seed: u64) -> TeleHist {
        TeleHist { hist: Histogram::new(), reservoir: Reservoir::new(RESERVOIR_CAP, seed) }
    }

    /// Records one sample into both representations.
    pub fn record(&mut self, v: u64) {
        self.hist.record(v);
        self.reservoir.record(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.hist.samples()
    }

    /// Exact maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.hist.max()
    }

    /// The `q`-quantile: exact (reservoir) while at most
    /// [`RESERVOIR_CAP`] samples were recorded, otherwise the log₂
    /// bucket's upper edge capped at the true maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.reservoir.seen() <= RESERVOIR_CAP as u64 {
            self.reservoir.quantile(q).unwrap_or(0)
        } else {
            self.hist.quantile(q)
        }
    }

    /// The log₂-bucket representation.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Absorbs `other` (bucket counts add exactly; reservoirs merge
    /// deterministically).
    pub fn merge(&mut self, other: &TeleHist) {
        self.hist.merge(&other.hist);
        self.reservoir.merge(&other.reservoir);
    }
}

/// A shared, internally synchronized [`TeleHist`] registered in a
/// [`TelemetryHub`]. Recording takes an uncontended mutex — callers feed
/// it per round, not per delivery.
#[derive(Debug)]
pub struct HistCell {
    inner: Mutex<TeleHist>,
}

impl HistCell {
    fn new(seed: u64) -> HistCell {
        HistCell { inner: Mutex::new(TeleHist::new(seed)) }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        lock_ok(&self.inner).record(v);
    }

    /// A point-in-time copy of the cell.
    pub fn snapshot(&self) -> TeleHist {
        lock_ok(&self.inner).clone()
    }

    /// Merges an already-aggregated [`TeleHist`] into the cell (bucket
    /// counts add exactly; reservoirs merge deterministically).
    pub fn absorb(&self, other: &TeleHist) {
        lock_ok(&self.inner).merge(other);
    }
}

/// A lock-free-ish registry of named counters, gauges, and histogram
/// cells. Registration (first lookup of a name) takes a mutex; the
/// returned handles are plain atomics ([`Counter`], [`Gauge`]) or
/// per-cell mutexes ([`HistCell`]), so steady-state recording never
/// touches the registry lock. Lookups are get-or-create: two callers
/// asking for the same name share one instrument.
#[derive(Debug, Default)]
pub struct TelemetryHub {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    hists: Mutex<Vec<(String, Arc<HistCell>)>>,
}

impl TelemetryHub {
    /// An empty hub.
    pub fn new() -> TelemetryHub {
        TelemetryHub::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut v = lock_ok(&self.counters);
        if let Some((_, c)) = v.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        v.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut v = lock_ok(&self.gauges);
        if let Some((_, g)) = v.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        v.push((name.to_string(), Arc::clone(&g)));
        g
    }

    /// The histogram cell registered under `name` (created on first use;
    /// its reservoir seed derives from the name, so layouts are stable
    /// across processes).
    pub fn histogram(&self, name: &str) -> Arc<HistCell> {
        let mut v = lock_ok(&self.hists);
        if let Some((_, h)) = v.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(HistCell::new(fnv64(name)));
        v.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Merges every instrument of `other` into this hub: counters add,
    /// gauges keep the maximum, histograms merge bucket-exactly. The
    /// merge walks `other`'s instruments in sorted-name order, so folding
    /// a fixed set of hubs (e.g. one per runner worker, in worker order)
    /// produces a deterministic registry regardless of how each hub's
    /// instruments were first touched. Totals (counter sums, histogram
    /// counts) are therefore identical across thread counts whenever the
    /// per-hub totals partition the same work.
    pub fn merge_from(&self, other: &TelemetryHub) {
        for (name, v) in other.sorted_counters() {
            self.counter(&name).add(v);
        }
        for (name, v) in other.sorted_gauges() {
            self.gauge(&name).raise(v);
        }
        for (name, h) in other.sorted_hists() {
            self.histogram(&name).absorb(&h);
        }
    }

    /// Every counter as `(name, value)`, sorted by name.
    pub fn sorted_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            lock_ok(&self.counters).iter().map(|(n, c)| (n.clone(), c.get())).collect();
        v.sort();
        v
    }

    /// Every gauge as `(name, value)`, sorted by name.
    pub fn sorted_gauges(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            lock_ok(&self.gauges).iter().map(|(n, g)| (n.clone(), g.get())).collect();
        v.sort();
        v
    }

    /// A snapshot of every histogram as `(name, hist)`, sorted by name.
    pub fn sorted_hists(&self) -> Vec<(String, TeleHist)> {
        let mut v: Vec<(String, TeleHist)> =
            lock_ok(&self.hists).iter().map(|(n, h)| (n.clone(), h.snapshot())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Renders every instrument as Prometheus exposition text (counters
    /// and gauges as-is; histograms as summaries with `quantile` labels
    /// plus `_count` and `_max` series), names sorted.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in self.sorted_counters() {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in self.sorted_gauges() {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in self.sorted_hists() {
            let _ = writeln!(out, "# TYPE {name} summary");
            for q in ["0.5", "0.9", "0.99"] {
                let qv = h.quantile(q.parse().expect("literal quantile"));
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {qv}");
            }
            let _ = writeln!(out, "{name}_count {}\n{name}_max {}", h.count(), h.max());
        }
        out
    }

    /// Renders every instrument as one deterministic JSON object
    /// (`{"counters":{...},"gauges":{...},"histograms":{...}}`, names
    /// sorted).
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let scalar_obj = |items: &[(String, u64)]| {
            let fields: Vec<String> = items.iter().map(|(n, v)| format!("\"{n}\": {v}")).collect();
            format!("{{{}}}", fields.join(", "))
        };
        let mut out = String::new();
        let _ = write!(out, "{{\"counters\": {}", scalar_obj(&self.sorted_counters()));
        let _ = write!(out, ", \"gauges\": {}", scalar_obj(&self.sorted_gauges()));
        let hists: Vec<String> = self
            .sorted_hists()
            .iter()
            .map(|(n, h)| {
                format!(
                    "\"{n}\": {{\"count\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    h.count(),
                    h.max(),
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.99)
                )
            })
            .collect();
        let _ = write!(out, ", \"histograms\": {{{}}}}}", hists.join(", "));
        out.push('\n');
        out
    }
}

/// Builds a per-round callback for `Engine::stream_rounds` /
/// `SoaEngine::stream_rounds` that feeds the standard engine instruments
/// of `hub`: `engine_rounds_total`, `engine_bits_total`,
/// `engine_logical_messages_total`, `engine_deliveries_total` counters,
/// `engine_inflight_last` / `engine_inflight_peak` gauges, and the
/// `engine_round_bits` / `engine_round_deliveries` histograms. Cost is
/// O(1) per **round**; nothing here runs per delivery.
pub fn round_observer(hub: &Arc<TelemetryHub>) -> impl FnMut(RoundFlow) + 'static {
    let rounds = hub.counter("engine_rounds_total");
    let bits = hub.counter("engine_bits_total");
    let logical = hub.counter("engine_logical_messages_total");
    let deliveries = hub.counter("engine_deliveries_total");
    let inflight = hub.gauge("engine_inflight_last");
    let inflight_peak = hub.gauge("engine_inflight_peak");
    let round_bits = hub.histogram("engine_round_bits");
    let round_deliveries = hub.histogram("engine_round_deliveries");
    move |flow: RoundFlow| {
        rounds.inc();
        bits.add(flow.bits);
        logical.add(flow.logical);
        deliveries.add(flow.deliveries);
        inflight.set(flow.deliveries);
        inflight_peak.raise(flow.deliveries);
        round_bits.record(flow.bits);
        round_deliveries.record(flow.deliveries);
    }
}

// ---------------------------------------------------------------------------
// Sampled tracing
// ---------------------------------------------------------------------------

/// Per-stratum sampling bookkeeping exposed by
/// [`SamplingSink::factors`]: everything a report needs to scale sampled
/// counts back up and state how much to trust the estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleFactor {
    /// Stratum label: `send/<kind>` (`send/-` for untagged sends) or
    /// `deliver`.
    pub stratum: String,
    /// Events seen in the full stream.
    pub total_events: u64,
    /// Events forwarded to the inner sink.
    pub sampled_events: u64,
    /// Bits seen in the full stream.
    pub total_bits: u64,
    /// Bits forwarded to the inner sink.
    pub sampled_bits: u64,
}

impl SampleFactor {
    /// The unbiased scale-up factor: multiply sampled counts by this to
    /// estimate full-stream counts (1.0 when nothing was dropped).
    pub fn scale(&self) -> f64 {
        if self.sampled_events == 0 {
            1.0
        } else {
            self.total_events as f64 / self.sampled_events as f64
        }
    }

    /// The relative standard error of a scaled-up count, `1/sqrt(m)` for
    /// `m` sampled events (1.0 when the stratum has no samples — i.e. no
    /// confidence at all).
    pub fn rel_error(&self) -> f64 {
        if self.sampled_events == 0 {
            1.0
        } else {
            1.0 / (self.sampled_events as f64).sqrt()
        }
    }
}

/// A [`TraceSink`] wrapper that forwards the `Send`/`Deliver` events of a
/// deterministic 1-in-k subset of nodes and drops the rest, while
/// metering the *full* stream per stratum so the dropped volume is known
/// exactly.
///
/// Admission is by node: node `v` is admitted to stratum `s` iff
/// `mix64(seed ^ fnv64(s) ^ v) % k == 0`. Hashing the stratum in means
/// each message kind draws its own independent 1-in-k node subset
/// (per-kind stratification); hashing the node (rather than a message
/// counter) means an admitted node contributes *all* of its events for
/// that kind, so per-node blame tables computed on the sample are exact
/// for the sampled nodes and scale up unbiasedly across nodes.
///
/// Structural events (`Crash`, `PhaseEnter`/`PhaseExit`, `Decide`) are
/// always forwarded — they are rare and analyses need them whole. With
/// `k = 1` every event is forwarded and the wrapper is an exact
/// passthrough.
pub struct SamplingSink {
    inner: Box<dyn TraceSink>,
    k: u64,
    seed: u64,
    strata: Vec<(u64, SampleFactor)>,
    /// Index of the stratum the previous event hit — consecutive events
    /// overwhelmingly share a kind, so this skips the table scan on the
    /// million-event hot path.
    last: usize,
}

impl SamplingSink {
    /// Wraps `inner`, keeping 1 in `k` nodes per stratum (`k = 0` is
    /// treated as 1: keep everything).
    pub fn new(inner: Box<dyn TraceSink>, k: u64, seed: u64) -> SamplingSink {
        SamplingSink { inner, k: k.max(1), seed, strata: Vec::new(), last: 0 }
    }

    /// The deterministic admission rule (also usable by readers that
    /// want to know which nodes a sampled trace covers): whether node
    /// `node` is admitted to the stratum hashed as `stratum_hash` under
    /// `seed` and rate `k`.
    pub fn admits(seed: u64, k: u64, stratum_hash: u64, node: NodeId) -> bool {
        k <= 1 || mix64(seed ^ stratum_hash ^ u64::from(node.0)).is_multiple_of(k)
    }

    /// The stratum hash for a send of message kind `kind` (empty string
    /// for untagged sends).
    pub fn send_stratum(kind: &str) -> u64 {
        fnv64("send") ^ fnv64(kind)
    }

    /// The stratum hash for deliveries.
    pub fn deliver_stratum() -> u64 {
        fnv64("deliver")
    }

    /// The per-stratum totals, sampled counts, scale-up factors, and
    /// error bars, in first-seen order.
    pub fn factors(&self) -> Vec<SampleFactor> {
        self.strata.iter().map(|(_, f)| f.clone()).collect()
    }

    /// The sampling rate (1 in `k`).
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> Box<dyn TraceSink> {
        self.inner
    }

    fn stratum_mut(&mut self, hash: u64, label: &dyn Fn() -> String) -> &mut SampleFactor {
        if let Some((h, _)) = self.strata.get(self.last) {
            if *h == hash {
                return &mut self.strata[self.last].1;
            }
        }
        if let Some(i) = self.strata.iter().position(|(h, _)| *h == hash) {
            self.last = i;
            return &mut self.strata[i].1;
        }
        self.strata.push((
            hash,
            SampleFactor {
                stratum: label(),
                total_events: 0,
                sampled_events: 0,
                total_bits: 0,
                sampled_bits: 0,
            },
        ));
        self.last = self.strata.len() - 1;
        &mut self.strata.last_mut().expect("just pushed").1
    }
}

impl TraceSink for SamplingSink {
    fn record(&mut self, e: &Event) {
        let (hash, node, bits) = match e {
            Event::Send { node, bits, kind, .. } => (Self::send_stratum(kind), *node, *bits),
            Event::Deliver { node, bits, .. } => (Self::deliver_stratum(), *node, *bits),
            _ => {
                // Structural events pass through whole.
                self.inner.record(e);
                return;
            }
        };
        let (k, seed) = (self.k, self.seed);
        let admitted = Self::admits(seed, k, hash, node);
        let f = self.stratum_mut(hash, &|| match e {
            Event::Send { kind, .. } if kind.is_empty() => "send/-".to_string(),
            Event::Send { kind, .. } => format!("send/{kind}"),
            _ => "deliver".to_string(),
        });
        f.total_events += 1;
        f.total_bits += bits;
        if admitted {
            f.sampled_events += 1;
            f.sampled_bits += bits;
            self.inner.record(e);
        }
    }

    fn wants_delivers(&self) -> bool {
        self.inner.wants_delivers()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One sealed round of delta-encoded events.
#[derive(Clone, Debug)]
struct Segment {
    round: Round,
    bytes: Vec<u8>,
    events: u64,
}

#[derive(Debug)]
struct RecorderCore {
    rounds_cap: usize,
    segments: VecDeque<Segment>,
    cur: DeltaSink,
    cur_round: Round,
    record_delivers: bool,
    total_events: u64,
    recorded_events: u64,
    evicted_rounds: u64,
    dumped: bool,
}

impl RecorderCore {
    fn seal_current(&mut self) {
        if self.cur.event_count() == 0 {
            return;
        }
        let sink = std::mem::replace(&mut self.cur, DeltaSink::new());
        let events = sink.event_count();
        self.segments.push_back(Segment {
            round: self.cur_round,
            bytes: sink.into_bytes(),
            events,
        });
        // The now-open round occupies one of the `rounds_cap` slots, so
        // the ring retains exactly the last `rounds_cap` rounds overall.
        while self.segments.len() + 1 > self.rounds_cap {
            self.segments.pop_front();
            self.evicted_rounds += 1;
        }
    }

    fn offer(&mut self, e: &Event) {
        self.total_events += 1;
        if !self.record_delivers {
            if let Event::Deliver { .. } = e {
                return;
            }
        }
        let r = e.round();
        if r != self.cur_round && self.cur.event_count() > 0 {
            self.seal_current();
        }
        self.cur_round = r;
        self.cur.record(e);
        self.recorded_events += 1;
    }

    /// Every retained event, decoded back to one v2 JSONL document
    /// (schema header + one line per event, byte-compatible with
    /// `JsonlSink` output for the same events).
    fn snapshot_jsonl(&self) -> Result<String, String> {
        let mut out = format!("{{\"schema\":\"ftagg-trace\",\"v\":{TRACE_SCHEMA_VERSION}}}\n");
        for seg in &self.segments {
            for e in DeltaSink::decode(&seg.bytes)? {
                out.push_str(&e.to_jsonl());
                out.push('\n');
            }
        }
        for e in DeltaSink::decode(self.cur.bytes())? {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        Ok(out)
    }

    fn stats(&self) -> RecorderStats {
        let open = u64::from(self.cur.event_count() > 0);
        RecorderStats {
            rounds_buffered: self.segments.len() as u64 + open,
            events_buffered: self.segments.iter().map(|s| s.events).sum::<u64>()
                + self.cur.event_count(),
            bytes_buffered: self.segments.iter().map(|s| s.bytes.len() as u64).sum::<u64>()
                + self.cur.bytes().len() as u64,
            total_events: self.total_events,
            recorded_events: self.recorded_events,
            evicted_rounds: self.evicted_rounds,
            oldest_round: self.segments.front().map_or(self.cur_round, |s| s.round),
            newest_round: self.cur_round,
        }
    }
}

/// Point-in-time bookkeeping of a [`FlightRecorder`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Rounds currently held in the ring (sealed + open).
    pub rounds_buffered: u64,
    /// Events currently held in the ring.
    pub events_buffered: u64,
    /// Encoded bytes currently held in the ring.
    pub bytes_buffered: u64,
    /// Events offered to the recorder over its lifetime.
    pub total_events: u64,
    /// Events actually encoded (differs from `total_events` when
    /// deliveries are excluded).
    pub recorded_events: u64,
    /// Rounds evicted from the head of the ring.
    pub evicted_rounds: u64,
    /// The oldest round still retained.
    pub oldest_round: Round,
    /// The newest round seen.
    pub newest_round: Round,
}

/// The black box: a [`TraceSink`] keeping the last R rounds of events as
/// per-round [`DeltaSink`] segments in a bounded ring. Dumping decodes
/// the retained segments back into one versioned v2 JSONL artifact that
/// `ftagg-cli explain --input` / `report --input` replay directly.
///
/// Cloneable [`FlightRecorderHandle`]s (see [`FlightRecorder::handle`])
/// share the ring, so a CLI can install the recorder into an engine and
/// still dump it from a panic hook or after a watchdog violation.
pub struct FlightRecorder {
    core: Arc<Mutex<RecorderCore>>,
}

impl FlightRecorder {
    /// A recorder retaining the last `rounds` rounds (at least 1).
    pub fn new(rounds: usize) -> FlightRecorder {
        FlightRecorder {
            core: Arc::new(Mutex::new(RecorderCore {
                rounds_cap: rounds.max(1),
                segments: VecDeque::new(),
                cur: DeltaSink::new(),
                cur_round: 0,
                record_delivers: true,
                total_events: 0,
                recorded_events: 0,
                evicted_rounds: 0,
                dumped: false,
            })),
        }
    }

    /// Excludes per-delivery events (and tells the engine not to build
    /// them, via [`TraceSink::wants_delivers`]). This is the
    /// million-node configuration: sends, crashes, phases, and decides
    /// are retained at full fidelity — enough for replay, metrics, and
    /// blame, which are all send-driven — at a per-round instead of
    /// per-delivery cost.
    #[must_use]
    pub fn without_delivers(self) -> FlightRecorder {
        lock_ok(&self.core).record_delivers = false;
        self
    }

    /// A shared handle for dumping/inspecting the ring after the
    /// recorder itself has been boxed into an engine.
    pub fn handle(&self) -> FlightRecorderHandle {
        FlightRecorderHandle { core: Arc::clone(&self.core) }
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, e: &Event) {
        lock_ok(&self.core).offer(e);
    }

    fn wants_delivers(&self) -> bool {
        lock_ok(&self.core).record_delivers
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A cloneable view onto a [`FlightRecorder`]'s ring.
#[derive(Clone)]
pub struct FlightRecorderHandle {
    core: Arc<Mutex<RecorderCore>>,
}

impl FlightRecorderHandle {
    /// Decodes the retained ring into one v2 JSONL document.
    ///
    /// # Errors
    ///
    /// Returns a message if a segment fails to decode (corrupt memory —
    /// should not happen).
    pub fn snapshot_jsonl(&self) -> Result<String, String> {
        lock_ok(&self.core).snapshot_jsonl()
    }

    /// Writes [`Self::snapshot_jsonl`] to `path`, returning the
    /// recorder's stats at dump time.
    ///
    /// # Errors
    ///
    /// Returns a message on decode or IO failure.
    pub fn dump_to(&self, path: &std::path::Path) -> Result<RecorderStats, String> {
        let (text, stats) = {
            let core = lock_ok(&self.core);
            (core.snapshot_jsonl()?, core.stats())
        };
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write flight recording '{}': {e}", path.display()))?;
        Ok(stats)
    }

    /// Like [`Self::dump_to`], but a no-op returning `Ok(None)` if any
    /// handle of this recorder already dumped — so a watchdog-triggered
    /// dump and the panic hook cannot double-write.
    ///
    /// # Errors
    ///
    /// Returns a message on decode or IO failure.
    pub fn dump_once(&self, path: &std::path::Path) -> Result<Option<RecorderStats>, String> {
        {
            let mut core = lock_ok(&self.core);
            if core.dumped {
                return Ok(None);
            }
            core.dumped = true;
        }
        self.dump_to(path).map(Some)
    }

    /// Current bookkeeping.
    pub fn stats(&self) -> RecorderStats {
        lock_ok(&self.core).stats()
    }

    /// Installs a process-wide panic hook that dumps the ring to `path`
    /// (once) before delegating to the previously installed hook. The
    /// ring's mutex is poison-tolerant, so the dump works even when the
    /// panic unwound through a recording engine.
    pub fn install_panic_hook(&self, path: std::path::PathBuf) {
        let handle = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            match handle.dump_once(&path) {
                Ok(Some(stats)) => eprintln!(
                    "flight recorder: dumped {} events over {} rounds to {}",
                    stats.events_buffered,
                    stats.rounds_buffered,
                    path.display()
                ),
                Ok(None) => {}
                Err(e) => eprintln!("flight recorder: dump failed: {e}"),
            }
            prev(info);
        }));
    }
}

// ---------------------------------------------------------------------------
// Tee
// ---------------------------------------------------------------------------

/// Fans one event stream out to several sinks — e.g. a [`Watchdog`]
/// (crate::Watchdog) plus a [`FlightRecorder`] — since the engines hold
/// exactly one sink. Delivery interest is the OR of the inner sinks'.
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl TeeSink {
    /// An empty tee.
    pub fn new() -> TeeSink {
        TeeSink::default()
    }

    /// Adds a sink (builder style).
    #[must_use]
    pub fn with(mut self, sink: Box<dyn TraceSink>) -> TeeSink {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// The inner sinks, in insertion order (for downcasting after a run).
    pub fn sinks(&self) -> &[Box<dyn TraceSink>] {
        &self.sinks
    }

    /// Mutable access to the inner sinks.
    pub fn sinks_mut(&mut self) -> &mut [Box<dyn TraceSink>] {
        &mut self.sinks
    }

    /// Unwraps the inner sinks.
    pub fn into_sinks(self) -> Vec<Box<dyn TraceSink>> {
        self.sinks
    }
}

impl TraceSink for TeeSink {
    fn record(&mut self, e: &Event) {
        for s in &mut self.sinks {
            s.record(e);
        }
    }

    fn wants_delivers(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_delivers())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn counters_gauges_and_histograms_register_once() {
        let hub = TelemetryHub::new();
        hub.counter("c").add(3);
        hub.counter("c").add(4);
        assert_eq!(hub.counter("c").get(), 7);
        hub.gauge("g").set(5);
        hub.gauge("g").raise(2);
        assert_eq!(hub.gauge("g").get(), 5);
        hub.gauge("g").raise(9);
        assert_eq!(hub.gauge("g").get(), 9);
        hub.histogram("h").record(10);
        hub.histogram("h").record(20);
        assert_eq!(hub.histogram("h").snapshot().count(), 2);
    }

    #[test]
    fn hub_merge_adds_counters_raises_gauges_and_merges_hists() {
        let a = TelemetryHub::new();
        a.counter("trials_total").add(3);
        a.gauge("peak").set(10);
        a.histogram("lat").record(4);
        a.histogram("lat").record(8);
        let b = TelemetryHub::new();
        b.counter("trials_total").add(5);
        b.counter("steals_total").add(2);
        b.gauge("peak").set(7);
        b.histogram("lat").record(100);
        let merged = TelemetryHub::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.counter("trials_total").get(), 8);
        assert_eq!(merged.counter("steals_total").get(), 2);
        assert_eq!(merged.gauge("peak").get(), 10, "gauges merge by max");
        let lat = merged.histogram("lat").snapshot();
        assert_eq!(lat.count(), 3);
        assert_eq!(lat.max(), 100);
        // Merging in either order gives the same rendered registry.
        let flipped = TelemetryHub::new();
        flipped.merge_from(&b);
        flipped.merge_from(&a);
        assert_eq!(flipped.render_prometheus(), merged.render_prometheus());
    }

    #[test]
    fn metric_name_lint_accepts_prom_identifiers_only() {
        for ok in ["engine_bits_total", "_hidden", "a:b:c", "x9", "Runner_p99"] {
            assert!(is_valid_metric_name(ok), "{ok}");
        }
        for bad in ["", "9lives", "has space", "dash-ed", "dot.ted", "ütf"] {
            assert!(!is_valid_metric_name(bad), "{bad}");
        }
    }

    #[test]
    fn reservoir_is_deterministic_and_exact_when_small() {
        let mut a = Reservoir::new(8, 42);
        let mut b = Reservoir::new(8, 42);
        for v in 0..100u64 {
            a.record(v * 3);
            b.record(v * 3);
        }
        assert_eq!(a.samples(), b.samples(), "same seed, same stream, same reservoir");
        assert_eq!(a.seen(), 100);

        let mut small = Reservoir::new(RESERVOIR_CAP, 1);
        for v in [5u64, 1, 9, 3, 7] {
            small.record(v);
        }
        assert_eq!(small.quantile(0.5), Some(5));
        assert_eq!(small.quantile(1.0), Some(9));
        assert_eq!(Reservoir::new(4, 0).quantile(0.5), None);
    }

    #[test]
    fn telehist_quantiles_exact_then_bounded() {
        let mut h = TeleHist::new(7);
        for v in 1..=10u64 {
            h.record(v);
        }
        // Ten samples fit the reservoir: exact quantiles.
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        for v in 0..1000u64 {
            h.record(v);
        }
        // Saturated: falls back to the log2 bucket edge, never past max.
        let p99 = h.quantile(0.99);
        assert!(p99 <= h.max(), "p99 {p99} must not exceed max {}", h.max());
        let mut other = TeleHist::new(7);
        other.record(1_000_000);
        h.merge(&other);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.count(), 1011);
    }

    #[test]
    fn hub_renders_prometheus_and_json_sorted() {
        let hub = TelemetryHub::new();
        hub.counter("b_total").add(2);
        hub.counter("a_total").add(1);
        hub.gauge("inflight").set(4);
        hub.histogram("lat").record(100);
        let prom = hub.render_prometheus();
        let a = prom.find("a_total 1").expect("a_total rendered");
        let b = prom.find("b_total 2").expect("b_total rendered");
        assert!(a < b, "names sorted:\n{prom}");
        assert!(prom.contains("# TYPE inflight gauge"), "{prom}");
        assert!(prom.contains("lat{quantile=\"0.5\"} 100"), "{prom}");
        assert!(prom.contains("lat_count 1"), "{prom}");
        let json = hub.render_json();
        assert!(json.contains("\"a_total\": 1, \"b_total\": 2"), "{json}");
        assert!(json.contains("\"inflight\": 4"), "{json}");
        assert!(json.contains("\"lat\": {\"count\": 1"), "{json}");
    }

    #[test]
    fn round_observer_feeds_the_standard_instruments() {
        let hub = Arc::new(TelemetryHub::new());
        let mut cb = round_observer(&hub);
        cb(RoundFlow { round: 1, bits: 24, logical: 3, deliveries: 4 });
        cb(RoundFlow { round: 2, bits: 8, logical: 1, deliveries: 2 });
        assert_eq!(hub.counter("engine_rounds_total").get(), 2);
        assert_eq!(hub.counter("engine_bits_total").get(), 32);
        assert_eq!(hub.counter("engine_logical_messages_total").get(), 4);
        assert_eq!(hub.counter("engine_deliveries_total").get(), 6);
        assert_eq!(hub.gauge("engine_inflight_last").get(), 2);
        assert_eq!(hub.gauge("engine_inflight_peak").get(), 4);
        assert_eq!(hub.histogram("engine_round_bits").snapshot().count(), 2);
    }

    fn send(round: Round, node: u32, bits: u64) -> Event {
        Event::send(round, NodeId(node), bits, 1)
    }

    #[test]
    fn sampling_k1_is_an_exact_passthrough() {
        let mut plain = Trace::default();
        let mut sampler = SamplingSink::new(Box::new(Trace::default()), 1, 99);
        for r in 1..=3 {
            for v in 0..10u32 {
                let e = send(r, v, 8);
                plain.record(&e);
                sampler.record(&e);
                let d = Event::deliver(r, NodeId(v), NodeId((v + 1) % 10), 8);
                plain.record(&d);
                sampler.record(&d);
            }
        }
        for f in sampler.factors() {
            assert_eq!(f.total_events, f.sampled_events, "{f:?}");
            assert!((f.scale() - 1.0).abs() < 1e-12);
        }
        let inner = sampler.into_inner();
        let got = inner.as_any().downcast_ref::<Trace>().expect("trace inner");
        assert_eq!(got.events(), plain.events(), "k=1 must be byte-identical");
    }

    #[test]
    fn sampling_is_node_deterministic_and_metered() {
        let k = 4u64;
        let seed = 7u64;
        let mut sampler = SamplingSink::new(Box::new(Trace::default()), k, seed);
        let n = 1000u32;
        for v in 0..n {
            sampler.record(&send(1, v, 16));
        }
        // Structural events always pass.
        sampler.record(&Event::Crash { round: 1, node: NodeId(3) });
        let f = &sampler.factors()[0];
        assert_eq!(f.total_events, u64::from(n));
        assert_eq!(f.total_bits, 16 * u64::from(n));
        assert!(f.sampled_events > 0 && f.sampled_events < u64::from(n));
        // Scale-up is unbiased-by-construction: total/sampled.
        let est = f.sampled_events as f64 * f.scale();
        assert!((est - f.total_events as f64).abs() < 1e-6);
        // Around n/k nodes admitted, within 5 standard deviations.
        let expect = n as f64 / k as f64;
        let sd = (expect * (1.0 - 1.0 / k as f64)).sqrt();
        assert!(
            (f.sampled_events as f64 - expect).abs() < 5.0 * sd,
            "sampled {} vs expected {expect}",
            f.sampled_events
        );
        let inner = sampler.into_inner();
        let got = inner.as_any().downcast_ref::<Trace>().expect("trace inner");
        // Every forwarded send is from an admitted node; the crash came through.
        let hash = SamplingSink::send_stratum("");
        for e in got.events() {
            match e {
                Event::Send { node, .. } => {
                    assert!(SamplingSink::admits(seed, k, hash, *node));
                }
                Event::Crash { node, .. } => assert_eq!(node.0, 3),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn sampling_strata_are_independent_per_kind() {
        let mut sampler = SamplingSink::new(Box::new(Trace::default()), 2, 1);
        for v in 0..200u32 {
            sampler.record(&Event::Send {
                round: 1,
                node: NodeId(v),
                bits: 8,
                logical: 1,
                id: crate::trace::EventId::NONE,
                kind: "alpha".to_string(),
                causes: Vec::new(),
            });
            sampler.record(&Event::Send {
                round: 1,
                node: NodeId(v),
                bits: 8,
                logical: 1,
                id: crate::trace::EventId::NONE,
                kind: "beta".to_string(),
                causes: Vec::new(),
            });
        }
        let factors = sampler.factors();
        assert_eq!(factors.len(), 2);
        assert_eq!(factors[0].stratum, "send/alpha");
        assert_eq!(factors[1].stratum, "send/beta");
        // Different kinds draw different node subsets (overwhelmingly).
        let a = SamplingSink::send_stratum("alpha");
        let b = SamplingSink::send_stratum("beta");
        let subset = |h: u64| -> Vec<u32> {
            (0..200).filter(|&v| SamplingSink::admits(1, 2, h, NodeId(v))).collect()
        };
        assert_ne!(subset(a), subset(b), "strata must be independently seeded");
    }

    #[test]
    fn flight_recorder_retains_the_last_rounds_and_replays() {
        let mut rec = FlightRecorder::new(3);
        let handle = rec.handle();
        for r in 1..=10u64 {
            rec.record(&Event::PhaseEnter { round: r, label: format!("P{r}") });
            rec.record(&send(r, (r % 5) as u32, 8));
            rec.record(&Event::deliver(r, NodeId(0), NodeId(1), 8));
        }
        let stats = handle.stats();
        assert_eq!(stats.total_events, 30);
        assert_eq!(stats.recorded_events, 30);
        assert_eq!(stats.evicted_rounds, 7);
        assert_eq!(stats.rounds_buffered, 3);
        assert_eq!(stats.oldest_round, 8);
        assert_eq!(stats.newest_round, 10);
        let jsonl = handle.snapshot_jsonl().expect("decodes");
        assert!(jsonl.starts_with("{\"schema\":\"ftagg-trace\",\"v\":2}\n"), "{jsonl}");
        // Only rounds 8..=10 survive, in order, fully decoded.
        let trace = Trace::from_jsonl(jsonl.as_bytes()).expect("replayable");
        let rounds: Vec<Round> = trace.events().iter().map(Event::round).collect();
        assert_eq!(trace.events().len(), 9);
        assert!(rounds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*rounds.first().expect("events"), 8);
        assert_eq!(*rounds.last().expect("events"), 10);
    }

    #[test]
    fn flight_recorder_without_delivers_drops_them_and_reports_interest() {
        let mut rec = FlightRecorder::new(4).without_delivers();
        assert!(!rec.wants_delivers());
        let handle = rec.handle();
        rec.record(&send(1, 0, 8));
        rec.record(&Event::deliver(1, NodeId(1), NodeId(0), 8));
        rec.record(&Event::Crash { round: 1, node: NodeId(2) });
        let stats = handle.stats();
        assert_eq!(stats.total_events, 3);
        assert_eq!(stats.recorded_events, 2);
        let jsonl = handle.snapshot_jsonl().expect("decodes");
        assert!(!jsonl.contains("\"ev\":\"deliver\""), "{jsonl}");
        assert!(jsonl.contains("\"ev\":\"crash\""), "{jsonl}");
    }

    #[test]
    fn flight_recorder_dump_once_fires_once() {
        let dir = std::env::temp_dir().join("ftagg-telemetry-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("dump_once.jsonl");
        let mut rec = FlightRecorder::new(2);
        rec.record(&send(1, 0, 8));
        let handle = rec.handle();
        let first = handle.dump_once(&path).expect("dump");
        assert!(first.is_some());
        let second = handle.dump_once(&path).expect("second call is a no-op");
        assert!(second.is_none());
        let text = std::fs::read_to_string(&path).expect("artifact written");
        assert!(text.contains("\"ev\":\"send\""), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tee_fans_out_and_ors_delivery_interest() {
        let mut tee = TeeSink::new()
            .with(Box::new(Trace::default()))
            .with(Box::new(FlightRecorder::new(2).without_delivers()));
        assert!(tee.wants_delivers(), "Trace still wants delivers");
        tee.record(&send(1, 0, 8));
        tee.record(&Event::deliver(1, NodeId(1), NodeId(0), 8));
        let sinks = tee.into_sinks();
        let trace = sinks[0].as_any().downcast_ref::<Trace>().expect("trace");
        assert_eq!(trace.events().len(), 2);

        let deaf = TeeSink::new()
            .with(Box::new(FlightRecorder::new(2).without_delivers()))
            .with(Box::new(FlightRecorder::new(2).without_delivers()));
        assert!(!deaf.wants_delivers());
    }

    #[test]
    fn tee_keeps_fanning_out_when_one_inner_sink_truncates() {
        // A tiny ring inside the tee evicts its head and says so (the
        // RingSink precedent: `to_trace()` comes back truncated), while
        // the sibling ring keeps the whole stream — one degraded sink
        // never steals events from the others.
        let mut tee = TeeSink::new()
            .with(Box::new(crate::trace::RingSink::new(2)))
            .with(Box::new(crate::trace::RingSink::new(64)));
        for i in 0..8 {
            tee.record(&send(1, i, 8));
        }
        let sinks = tee.into_sinks();
        let tiny = sinks[0].as_any().downcast_ref::<crate::trace::RingSink>().expect("ring");
        let full = sinks[1].as_any().downcast_ref::<crate::trace::RingSink>().expect("ring");
        assert_eq!(tiny.dropped(), 6);
        assert_eq!(tiny.seen(), 8);
        assert!(tiny.to_trace().truncated(), "eviction must be visible downstream");
        assert_eq!(full.dropped(), 0);
        assert_eq!(full.seen(), 8);
        assert!(!full.to_trace().truncated());
    }

    #[test]
    fn tee_isolates_an_erroring_inner_sink_and_the_error_stays_visible() {
        use crate::trace::JsonlSink;
        use std::io::{self, Write};

        /// Accepts the schema header, then fails every later write.
        #[derive(Debug)]
        struct FailAfterHeader {
            writes: u32,
        }
        impl Write for FailAfterHeader {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.writes += 1;
                if self.writes > 1 {
                    return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut tee = TeeSink::new()
            .with(Box::new(JsonlSink::new(FailAfterHeader { writes: 0 })))
            .with(Box::new(crate::trace::RingSink::new(64)));
        tee.record(&send(1, 0, 8));
        tee.record(&send(1, 1, 8));
        let sinks = tee.into_sinks();
        // The failing writer latched on its first event line and wrote
        // nothing further; the sibling still saw every event.
        let jsonl = sinks[0].as_any().downcast_ref::<JsonlSink<FailAfterHeader>>().expect("jsonl");
        assert_eq!(jsonl.lines(), 1, "only the header made it out");
        let ring = sinks[1].as_any().downcast_ref::<crate::trace::RingSink>().expect("ring");
        assert_eq!(ring.seen(), 2, "fan-out must survive a failing sibling");
        // The latched error is propagated, not swallowed: finish() on an
        // identically failing sink surfaces the first I/O error.
        let mut solo = JsonlSink::new(FailAfterHeader { writes: 0 });
        solo.record(&send(1, 0, 8));
        let err = solo.finish().expect_err("the latched write error must surface");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }
}
