//! Deterministic parallel trial execution.
//!
//! Every experiment in this repository has the same outer shape: run one
//! simulated execution per seed, then aggregate. [`Runner`] fans a seed
//! list out over a pool of scoped worker threads with work stealing, and
//! returns the per-trial results **in seed order** — so any reduction over
//! them is bit-identical to a serial `for seed in seeds` loop, regardless
//! of thread count or OS scheduling. Determinism comes for free from the
//! model: a trial's outcome is a pure function of its seed (the engine has
//! no hidden randomness), and the runner never lets thread interleaving
//! reach the results.
//!
//! ```
//! use netsim::runner::Runner;
//!
//! let seeds: Vec<u64> = (0..32).collect();
//! let serial: Vec<u64> = seeds.iter().map(|&s| s * s).collect();
//! let parallel = Runner::new(4).run(&seeds, |s| s * s);
//! assert_eq!(serial, parallel);
//! ```

use crate::adversary::Round;
use crate::graph::NodeId;
use crate::metrics::{Metrics, PhaseStats};
use crate::telemetry::{Counter, HistCell, TelemetryHub};
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A point-in-time snapshot of a sweep's progress, handed to a
/// [`ProgressSink`] after every completed trial.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Trials finished so far (1-based; the final call has
    /// `completed == total`).
    pub completed: usize,
    /// Total trials in the sweep.
    pub total: usize,
    /// Index of the worker thread that finished this trial (0 on the
    /// serial path).
    pub worker: usize,
    /// Wall time since the sweep started.
    pub elapsed: Duration,
    /// Watchdog violations the driver has fed into the sink so far (via
    /// [`ProgressSink::add_violations`]); 0 when unmonitored.
    pub violations: u64,
    /// Median per-trial latency in microseconds so far (0 on the
    /// uninstrumented paths — see [`Runner::run_instrumented`]).
    pub p50_micros: u64,
    /// 99th-percentile per-trial latency in microseconds so far (0 on
    /// the uninstrumented paths).
    pub p99_micros: u64,
    /// The worker whose accumulated busy time exceeds twice the mean —
    /// a straggler hint, populated by the instrumented paths once every
    /// worker has had a fair chance (≥ 2 trials per worker overall).
    pub straggler: Option<usize>,
}

impl Progress {
    /// Aggregate throughput in trials per second (all workers combined).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Estimated wall time to finish the remaining trials at the current
    /// aggregate throughput (zero when done or before any signal).
    pub fn eta(&self) -> Duration {
        let rate = self.throughput();
        if rate <= 0.0 || self.completed >= self.total {
            return Duration::ZERO;
        }
        Duration::from_secs_f64((self.total - self.completed) as f64 / rate)
    }
}

/// Live observer of a [`Runner`] sweep — the runner-level analogue of the
/// engine's trace sink, guarded by the same single `Option` branch per
/// trial. Implementations must be cheap and `Sync`: `trial_done` is called
/// from every worker thread. Progress never touches results, so a sweep
/// with a sink is bit-identical to one without.
pub trait ProgressSink: Sync {
    /// Called once after each trial completes. `p.completed` values are
    /// distinct across calls (each trial observes the counter once), but
    /// calls from different workers may arrive out of order.
    fn trial_done(&self, p: &Progress);

    /// Monitored drivers feed watchdog violations here as trials find
    /// them; the running total is echoed back in [`Progress::violations`].
    fn add_violations(&self, _n: u64) {}

    /// Violations fed so far (0 unless the sink counts them).
    fn violations(&self) -> u64 {
        0
    }
}

/// A throttled `stderr` progress line (`\r`-rewritten in place), for
/// `--progress` on CLI sweeps and bench bins. Writes to stderr only, so
/// stdout output stays byte-identical with progress on or off.
#[derive(Debug)]
pub struct ConsoleProgress {
    every: Duration,
    last: Mutex<Option<Instant>>,
    violations: AtomicU64,
}

impl ConsoleProgress {
    /// A console sink redrawing at most every 200 ms (plus a final line).
    pub fn new() -> Self {
        ConsoleProgress::with_interval(Duration::from_millis(200))
    }

    /// A console sink redrawing at most once per `every` (the final
    /// `completed == total` line always prints).
    pub fn with_interval(every: Duration) -> Self {
        ConsoleProgress { every, last: Mutex::new(None), violations: AtomicU64::new(0) }
    }

    /// The rendered progress line (without the leading `\r`).
    fn line(p: &Progress) -> String {
        let mut s = format!(
            "[{}/{}] {:.1} trials/s, eta {:.0}s, worker {}",
            p.completed,
            p.total,
            p.throughput(),
            p.eta().as_secs_f64(),
            p.worker,
        );
        if p.p99_micros > 0 {
            s.push_str(&format!(", p50 {}us p99 {}us", p.p50_micros, p.p99_micros));
        }
        if let Some(w) = p.straggler {
            s.push_str(&format!(", STRAGGLER worker {w}"));
        }
        if p.violations > 0 {
            s.push_str(&format!(", VIOLATIONS {}", p.violations));
        }
        s
    }
}

impl Default for ConsoleProgress {
    fn default() -> Self {
        ConsoleProgress::new()
    }
}

impl ProgressSink for ConsoleProgress {
    fn trial_done(&self, p: &Progress) {
        let done = p.completed >= p.total;
        {
            let mut last = self.last.lock().unwrap_or_else(|e| e.into_inner());
            if !done {
                if let Some(t) = *last {
                    if t.elapsed() < self.every {
                        return;
                    }
                }
            }
            *last = Some(Instant::now());
        }
        let mut err = std::io::stderr().lock();
        if done {
            let _ = writeln!(err, "\r{}", Self::line(p));
        } else {
            let _ = write!(err, "\r{}", Self::line(p));
            let _ = err.flush();
        }
    }

    fn add_violations(&self, n: u64) {
        self.violations.fetch_add(n, Ordering::Relaxed);
    }

    fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }
}

/// One worker's share of an instrumented sweep (see
/// [`Runner::run_instrumented`]). Wall-clock fields (`busy`, `idle`,
/// latency quantiles) and `steals` depend on OS scheduling and are *not*
/// deterministic; only the totals across workers (trial count, latency
/// histogram count) are.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Worker index (0-based).
    pub worker: usize,
    /// Trials this worker completed.
    pub trials: u64,
    /// Trials claimed outside this worker's round-robin share — a proxy
    /// for how much the cursor rebalanced work toward this worker.
    pub steals: u64,
    /// Wall time spent inside trials.
    pub busy: Duration,
    /// Wall time spent between trials (claim latency + tail wait).
    pub idle: Duration,
    /// Median per-trial latency, microseconds.
    pub p50_micros: u64,
    /// 99th-percentile per-trial latency, microseconds.
    pub p99_micros: u64,
}

/// The merged per-worker telemetry of one instrumented sweep: every
/// worker owns a private [`TelemetryHub`] while running (no cross-worker
/// synchronization on the trial path), and the hubs are merged in worker
/// order at join — so the merged totals (`runner_trials_total`, the
/// `runner_trial_micros` histogram count) are bit-identical across
/// thread counts, while the per-worker rows expose the nondeterministic
/// load split for straggler analysis.
#[derive(Debug)]
pub struct RunnerTelemetry {
    /// The merged hub: `runner_trials_total`, `runner_steals_total`,
    /// `runner_busy_micros_total`, `runner_idle_micros_total` counters
    /// and the `runner_trial_micros` histogram.
    pub hub: Arc<TelemetryHub>,
    /// Per-worker load rows, in worker order.
    pub workers: Vec<WorkerLoad>,
    /// Wall time of the whole sweep.
    pub elapsed: Duration,
}

impl RunnerTelemetry {
    fn from_parts(parts: Vec<(TelemetryHub, WorkerLoad)>, elapsed: Duration) -> RunnerTelemetry {
        let hub = TelemetryHub::new();
        let mut workers = Vec::with_capacity(parts.len());
        for (whub, load) in parts {
            hub.merge_from(&whub);
            workers.push(load);
        }
        RunnerTelemetry { hub: Arc::new(hub), workers, elapsed }
    }

    /// Total trials across workers (= the seed count; deterministic).
    pub fn trials(&self) -> u64 {
        self.hub.counter("runner_trials_total").get()
    }

    /// Total out-of-share claims across workers (scheduling-dependent).
    pub fn steals(&self) -> u64 {
        self.hub.counter("runner_steals_total").get()
    }

    /// Median per-trial latency over the merged histogram, microseconds.
    pub fn p50_micros(&self) -> u64 {
        self.hub.histogram("runner_trial_micros").snapshot().quantile(0.5)
    }

    /// 99th-percentile per-trial latency over the merged histogram,
    /// microseconds.
    pub fn p99_micros(&self) -> u64 {
        self.hub.histogram("runner_trial_micros").snapshot().quantile(0.99)
    }

    /// The worker whose busy time exceeds twice the mean, if any — the
    /// same rule the live progress line uses.
    pub fn straggler(&self) -> Option<usize> {
        straggler_of(&self.workers.iter().map(|w| w.busy.as_micros() as u64).collect::<Vec<_>>())
    }

    /// The per-worker breakdown as an aligned ASCII table (one row per
    /// worker, straggler row marked).
    pub fn workers_table(&self) -> String {
        use std::fmt::Write as _;
        let straggler = self.straggler();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>7} {:>7} {:>10} {:>10} {:>9} {:>9}",
            "worker", "trials", "steals", "busy_ms", "idle_ms", "p50_us", "p99_us"
        );
        for w in &self.workers {
            let _ = write!(
                out,
                "{:>6} {:>7} {:>7} {:>10.1} {:>10.1} {:>9} {:>9}",
                w.worker,
                w.trials,
                w.steals,
                w.busy.as_secs_f64() * 1e3,
                w.idle.as_secs_f64() * 1e3,
                w.p50_micros,
                w.p99_micros,
            );
            if straggler == Some(w.worker) {
                out.push_str("  <- straggler");
            }
            out.push('\n');
        }
        out
    }
}

/// The straggler rule shared by the live progress line and the final
/// summary: with at least two workers that actually ran trials, the
/// worker whose busy time exceeds twice the mean busy time. A lone
/// active worker (peers all at zero) is not a straggler — it has
/// nobody to lag behind.
fn straggler_of(busy_micros: &[u64]) -> Option<usize> {
    if busy_micros.len() < 2 || busy_micros.iter().filter(|&&v| v > 0).count() < 2 {
        return None;
    }
    let mean = busy_micros.iter().sum::<u64>() / busy_micros.len() as u64;
    let (worker, &max) = busy_micros.iter().enumerate().max_by_key(|&(_, &v)| v)?;
    (mean > 0 && max > 2 * mean).then_some(worker)
}

/// Shared live state behind the instrumented progress line: a merged
/// latency histogram and per-worker busy totals, touched once per trial.
struct LiveLoad {
    hist: Mutex<Histogram>,
    busy_micros: Vec<AtomicU64>,
}

impl LiveLoad {
    fn new(workers: usize) -> LiveLoad {
        LiveLoad {
            hist: Mutex::new(Histogram::new()),
            busy_micros: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// `(p50, p99, straggler)` for the progress line. The straggler flag
    /// holds back until every worker has had a fair chance (≥ 2 trials
    /// per worker overall) so the first claims don't trip it.
    fn snapshot(&self, completed: usize) -> (u64, u64, Option<usize>) {
        let (p50, p99) = {
            let h = self.hist.lock().unwrap_or_else(|e| e.into_inner());
            (h.quantile(0.5), h.quantile(0.99))
        };
        let straggler = if completed >= 2 * self.busy_micros.len() {
            let loads: Vec<u64> =
                self.busy_micros.iter().map(|a| a.load(Ordering::Relaxed)).collect();
            straggler_of(&loads)
        } else {
            None
        };
        (p50, p99, straggler)
    }
}

/// One worker's private instrumentation: a hub plus cached instrument
/// handles, so the per-trial cost is two `Instant::now` calls, two
/// atomic adds, and one uncontended histogram lock — no cross-worker
/// synchronization.
struct WorkerTele {
    worker: usize,
    spawned: Instant,
    busy: Duration,
    hub: TelemetryHub,
    trials: Arc<Counter>,
    steals: Arc<Counter>,
    latency: Arc<HistCell>,
}

impl WorkerTele {
    fn new(worker: usize) -> WorkerTele {
        let hub = TelemetryHub::new();
        let trials = hub.counter("runner_trials_total");
        let steals = hub.counter("runner_steals_total");
        let latency = hub.histogram("runner_trial_micros");
        WorkerTele {
            worker,
            spawned: Instant::now(),
            busy: Duration::ZERO,
            hub,
            trials,
            steals,
            latency,
        }
    }

    /// Runs one trial under the clock. `stolen` marks a claim outside
    /// this worker's round-robin share.
    fn timed<T>(&mut self, stolen: bool, trial: impl FnOnce() -> T, live: Option<&LiveLoad>) -> T {
        let t0 = Instant::now();
        let out = trial();
        let dt = t0.elapsed();
        self.busy += dt;
        let micros = dt.as_micros().min(u128::from(u64::MAX)) as u64;
        self.trials.inc();
        if stolen {
            self.steals.inc();
        }
        self.latency.record(micros);
        if let Some(l) = live {
            l.busy_micros[self.worker].store(self.busy.as_micros() as u64, Ordering::Relaxed);
            l.hist.lock().unwrap_or_else(|e| e.into_inner()).record(micros);
        }
        out
    }

    /// Seals the worker: accounts busy/idle wall time into the hub and
    /// extracts the load row.
    fn finish(self) -> (TelemetryHub, WorkerLoad) {
        let idle = self.spawned.elapsed().saturating_sub(self.busy);
        self.hub.counter("runner_busy_micros_total").add(self.busy.as_micros() as u64);
        self.hub.counter("runner_idle_micros_total").add(idle.as_micros() as u64);
        let lat = self.latency.snapshot();
        let load = WorkerLoad {
            worker: self.worker,
            trials: lat.count(),
            steals: self.steals.get(),
            busy: self.busy,
            idle,
            p50_micros: lat.quantile(0.5),
            p99_micros: lat.quantile(0.99),
        };
        (self.hub, load)
    }
}

/// Executes independent trials across a fixed-size thread pool.
///
/// Workers claim seeds through a shared atomic cursor (work stealing), so
/// an expensive trial does not stall the others; each worker buffers
/// `(index, result)` pairs locally, and the buffers are merged back into
/// seed order after the pool joins. No locks are held while trials run.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner over `threads` workers. `0` selects the machine's
    /// available parallelism; an explicit count is clamped to it (trials
    /// are CPU-bound, so oversubscribing cores only adds scheduler churn —
    /// the 1-cpu CI box clocked `speedup_4t < 1` before this clamp). The
    /// first clamp per process logs a one-line warning to stderr. Use
    /// [`Runner::exact`] to keep an oversubscribed count.
    pub fn new(threads: usize) -> Self {
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        if threads > cores {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "runner: requested {threads} threads but only {cores} core(s) available; \
                     clamping to {cores}"
                );
            });
        }
        Runner { threads: if threads == 0 { cores } else { threads.min(cores) } }
    }

    /// A runner over exactly `threads` workers (min 1), bypassing the core
    /// clamp of [`Runner::new`]. For determinism tests that must exercise
    /// real multi-worker interleavings even on smaller machines.
    pub fn exact(threads: usize) -> Self {
        Runner { threads: threads.max(1) }
    }

    /// The worker count this runner was resolved to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trial` once per seed and returns the results in seed order.
    ///
    /// With the same seeds, the returned vector is byte-identical for any
    /// thread count (including 1), because results are re-ordered by seed
    /// index before being returned.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any trial that panicked.
    pub fn run<T, F>(&self, seeds: &[u64], trial: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        self.run_inner(seeds, |s, _| trial(s), None, false).0
    }

    /// [`Runner::run`] with a live [`ProgressSink`] observing trial
    /// completions. The sink is consulted behind one `Option` branch per
    /// *trial* (not per round), mirroring the engine's trace-sink guard;
    /// the returned results are bit-identical to [`Runner::run`]'s.
    pub fn run_progress<T, F>(&self, seeds: &[u64], trial: F, sink: &dyn ProgressSink) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        self.run_inner(seeds, |s, _| trial(s), Some(sink), false).0
    }

    /// [`Runner::run`] with per-worker telemetry: each worker owns a
    /// private [`TelemetryHub`] (trials, steals, busy/idle wall time, a
    /// per-trial latency log₂ histogram), merged deterministically in
    /// worker order at join. The results vector is bit-identical to
    /// [`Runner::run`]'s — telemetry never touches the seed-ordered
    /// results.
    pub fn run_instrumented<T, F>(&self, seeds: &[u64], trial: F) -> (Vec<T>, RunnerTelemetry)
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let (results, tele) = self.run_inner(seeds, |s, _| trial(s), None, true);
        (results, tele.expect("instrumented run always yields telemetry"))
    }

    /// [`Runner::run_instrumented`] with a live [`ProgressSink`]; the
    /// progress line additionally carries running p50/p99 trial latency
    /// and a straggler flag.
    pub fn run_progress_instrumented<T, F>(
        &self,
        seeds: &[u64],
        trial: F,
        sink: &dyn ProgressSink,
    ) -> (Vec<T>, RunnerTelemetry)
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let (results, tele) = self.run_inner(seeds, |s, _| trial(s), Some(sink), true);
        (results, tele.expect("instrumented run always yields telemetry"))
    }

    /// [`Runner::run_instrumented`] with a wall-clock
    /// [`crate::timeline::Timeline`] recording one `Trial` span per seed
    /// on the executing worker's lane. Worker `w` owns lane `w + 1`
    /// (lane 0 is left to the driver's own spans), and the trial closure
    /// receives that lane so it can forward it to
    /// [`crate::engine::Engine::set_timeline`] — nested round/stage
    /// spans then land on the same track as the enclosing trial.
    pub fn run_instrumented_timeline<T, F>(
        &self,
        seeds: &[u64],
        trial: F,
        tl: &crate::timeline::Timeline,
    ) -> (Vec<T>, RunnerTelemetry)
    where
        T: Send,
        F: Fn(u64, u32) -> T + Sync,
    {
        let (results, tele) = self.run_inner(seeds, self.timeline_trial(trial, tl), None, true);
        (results, tele.expect("instrumented run always yields telemetry"))
    }

    /// [`Runner::run_instrumented_timeline`] with a live
    /// [`ProgressSink`].
    pub fn run_progress_instrumented_timeline<T, F>(
        &self,
        seeds: &[u64],
        trial: F,
        sink: &dyn ProgressSink,
        tl: &crate::timeline::Timeline,
    ) -> (Vec<T>, RunnerTelemetry)
    where
        T: Send,
        F: Fn(u64, u32) -> T + Sync,
    {
        let (results, tele) =
            self.run_inner(seeds, self.timeline_trial(trial, tl), Some(sink), true);
        (results, tele.expect("instrumented run always yields telemetry"))
    }

    /// Wraps a lane-aware trial closure so each invocation is bracketed
    /// by a `Trial` span on the executing worker's lane. Also names the
    /// worker lanes up front so the export carries readable tracks even
    /// if a worker never claims a seed.
    fn timeline_trial<'a, T, F>(
        &self,
        trial: F,
        tl: &crate::timeline::Timeline,
    ) -> impl Fn(u64, usize) -> T + Sync + 'a
    where
        T: Send,
        F: Fn(u64, u32) -> T + Sync + 'a,
    {
        for w in 0..self.threads.max(1) {
            tl.name_lane(w as u32 + 1, &format!("worker {w}"));
        }
        let tl = tl.clone();
        move |seed: u64, worker: usize| {
            let lane = worker as u32 + 1;
            let t0 = tl.now_ns();
            let out = trial(seed, lane);
            let dur = tl.now_ns().saturating_sub(t0);
            tl.record_span(
                crate::timeline::SpanKind::Trial,
                &format!("seed {seed}"),
                lane,
                t0,
                dur,
                Some(seed),
            );
            out
        }
    }

    /// The shared trial loop. `trial` receives `(seed, worker)` — the
    /// public entry points either discard the worker index or use it to
    /// route timeline spans onto per-worker lanes.
    fn run_inner<T, F>(
        &self,
        seeds: &[u64],
        trial: F,
        progress: Option<&dyn ProgressSink>,
        instrument: bool,
    ) -> (Vec<T>, Option<RunnerTelemetry>)
    where
        T: Send,
        F: Fn(u64, usize) -> T + Sync,
    {
        let total = seeds.len();
        let started = Instant::now();
        let completed = AtomicUsize::new(0);
        let serial = self.threads <= 1 || seeds.len() <= 1;
        let workers = if serial { 1 } else { self.threads.min(seeds.len()) };
        // Live latency/straggler state exists only when someone watches.
        let live = (instrument && progress.is_some()).then(|| LiveLoad::new(workers));
        let live = live.as_ref();
        // The per-trial observation both paths share: bump the shared
        // counter, snapshot, hand to the sink. One branch when no sink.
        let observe = |worker: usize| {
            if let Some(sink) = progress {
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                let (p50_micros, p99_micros, straggler) =
                    live.map_or((0, 0, None), |l| l.snapshot(done));
                sink.trial_done(&Progress {
                    completed: done,
                    total,
                    worker,
                    elapsed: started.elapsed(),
                    violations: sink.violations(),
                    p50_micros,
                    p99_micros,
                    straggler,
                });
            }
        };
        if serial {
            let mut tele = instrument.then(|| WorkerTele::new(0));
            let results = seeds
                .iter()
                .map(|&s| {
                    let out = match &mut tele {
                        Some(t) => t.timed(false, || trial(s, 0), live),
                        None => trial(s, 0),
                    };
                    observe(0);
                    out
                })
                .collect();
            let tele =
                tele.map(|t| RunnerTelemetry::from_parts(vec![t.finish()], started.elapsed()));
            return (results, tele);
        }
        // One worker's portion: seed-indexed results plus its telemetry
        // (when instrumentation is on).
        type WorkerPart<T> = (Vec<(usize, T)>, Option<(TelemetryHub, WorkerLoad)>);
        let cursor = AtomicUsize::new(0);
        let cursor = &cursor;
        let trial = &trial;
        let observe = &observe;
        let parts: Vec<WorkerPart<T>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut tele = instrument.then(|| WorkerTele::new(w));
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&seed) = seeds.get(i) else { break };
                            let r = match &mut tele {
                                Some(t) => t.timed(i % workers != w, || trial(seed, w), live),
                                None => trial(seed, w),
                            };
                            out.push((i, r));
                            observe(w);
                        }
                        (out, tele.map(WorkerTele::finish))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        // Merge the workers' buckets back into seed order; worker hubs
        // merge in worker order (the join order), so the merged registry
        // is deterministic even though the load split is not.
        let mut slots: Vec<Option<T>> = (0..seeds.len()).map(|_| None).collect();
        let mut worker_parts = Vec::with_capacity(workers);
        for (bucket, tele) in parts {
            for (i, t) in bucket {
                slots[i] = Some(t);
            }
            if let Some(p) = tele {
                worker_parts.push(p);
            }
        }
        let results =
            slots.into_iter().map(|s| s.expect("every claimed seed produces a result")).collect();
        let tele = instrument.then(|| RunnerTelemetry::from_parts(worker_parts, started.elapsed()));
        (results, tele)
    }

    /// Runs `trial` per seed, then folds the results serially **in seed
    /// order** — the parallel equivalent of
    /// `seeds.iter().fold(init, |acc, &s| reduce(acc, trial(s)))`.
    pub fn run_reduce<T, A, F, R>(&self, seeds: &[u64], trial: F, init: A, mut reduce: R) -> A
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
        R: FnMut(A, T) -> A,
    {
        self.run(seeds, trial).into_iter().fold(init, &mut reduce)
    }

    /// [`Runner::run_reduce`] with a live [`ProgressSink`] — same
    /// seed-order fold, progress streamed as trials complete.
    pub fn run_reduce_progress<T, A, F, R>(
        &self,
        seeds: &[u64],
        trial: F,
        init: A,
        mut reduce: R,
        sink: &dyn ProgressSink,
    ) -> A
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
        R: FnMut(A, T) -> A,
    {
        self.run_progress(seeds, trial, sink).into_iter().fold(init, &mut reduce)
    }
}

/// A fixed-bucket log₂ histogram over `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`. The bucket layout never depends on the data, so
/// two histograms merge by adding counts — deterministically, in any
/// order — which is what lets [`TrialSummary`] accumulate distribution
/// shape across trials without storing every sample. Quantiles are
/// resolved to the matching bucket's upper edge (a ≤ 2× overestimate);
/// the maximum is tracked exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` = samples in bucket `i` (65 buckets cover all of u64).
    counts: Vec<u64>,
    samples: u64,
    max: u64,
}

/// Buckets: one for zero plus one per possible bit length of a `u64`.
const HIST_BUCKETS: usize = 65;

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; HIST_BUCKETS], samples: 0, max: 0 }
    }

    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper edge of bucket `i` (0, 1, 3, 7, …, u64::MAX).
    fn bucket_edge(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        self.counts[Self::bucket(value)] += 1;
        self.samples += 1;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The exact maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 < q ≤ 1`), resolved to the upper edge of the
    /// bucket holding the sample of that rank; 0 if empty. `quantile(0.5)`
    /// is the p50, `quantile(0.9)` the p90.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples == 0 {
            return 0;
        }
        let rank = ((q * self.samples as f64).ceil() as u64).clamp(1, self.samples);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true maximum.
                return Self::bucket_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into this histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.samples == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.samples += other.samples;
        self.max = self.max.max(other.max);
    }

    /// `(bucket_lower, bucket_upper, count)` for each non-empty bucket, in
    /// ascending value order — the rows of a rendered histogram.
    pub fn bars(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { Self::bucket_edge(i - 1) + 1 };
                (lo, Self::bucket_edge(i), c)
            })
            .collect()
    }
}

/// The measurements one trial contributes to an aggregate sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialStats {
    /// The seed that produced this trial.
    pub seed: u64,
    /// Rounds the execution ran.
    pub rounds: Round,
    /// The paper's CC: maximum bits over nodes.
    pub max_bits: u64,
    /// System-wide bits.
    pub total_bits: u64,
    /// The node achieving `max_bits` (lowest id on ties).
    pub bottleneck: Option<NodeId>,
    /// Per-phase breakdown of this trial (empty if the protocol recorded
    /// no phases).
    pub phases: Vec<PhaseStats>,
    /// Invariant violations the watchdog counted for this trial (0 when
    /// the trial ran unmonitored).
    pub violations: u64,
}

impl TrialStats {
    /// Extracts the stats of a finished execution, including its phase
    /// attribution. Violations start at 0; a monitored driver sets them
    /// from its [`crate::monitor::MonitorReport`] (or uses
    /// [`TrialStats::with_violations`]).
    pub fn from_metrics(seed: u64, rounds: Round, metrics: &Metrics) -> Self {
        TrialStats {
            seed,
            rounds,
            max_bits: metrics.max_bits(),
            total_bits: metrics.total_bits(),
            bottleneck: metrics.bottleneck(),
            phases: metrics.phases(),
            violations: 0,
        }
    }

    /// The same stats with the watchdog's violation count attached.
    #[must_use]
    pub fn with_violations(mut self, violations: u64) -> Self {
        self.violations = violations;
        self
    }
}

/// Cross-trial aggregate of one phase label (see [`TrialSummary::phases`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// The phase label being aggregated.
    pub label: String,
    /// Spans with this label absorbed (a trial may contribute several,
    /// e.g. one `"AGG"` per interval).
    pub spans: usize,
    /// Sum of span bits (for the mean).
    pub sum_bits: u64,
    /// Worst single span's bits.
    pub worst_bits: u64,
    /// Sum of span logical sends.
    pub sum_sends: u64,
    /// Sum of span round counts.
    pub sum_rounds: Round,
    /// Longest single span.
    pub worst_rounds: Round,
}

impl PhaseAgg {
    /// Mean bits per span with this label.
    pub fn mean_bits(&self) -> f64 {
        if self.spans == 0 {
            0.0
        } else {
            self.sum_bits as f64 / self.spans as f64
        }
    }
}

/// Order-insensitive aggregate of many [`TrialStats`].
///
/// Everything here is a max, min, sum, or count, so absorbing trials in
/// seed order (which [`Runner::run`] guarantees) gives bit-identical
/// summaries across thread counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrialSummary {
    /// Trials absorbed.
    pub trials: usize,
    /// Worst per-trial CC seen.
    pub worst_max_bits: u64,
    /// The seed achieving `worst_max_bits` (first in seed order on ties).
    pub worst_seed: Option<u64>,
    /// Sum of per-trial CCs (for the mean).
    pub sum_max_bits: u64,
    /// Sum of per-trial total bits.
    pub sum_total_bits: u64,
    /// Longest execution.
    pub max_rounds: Round,
    /// Sum of rounds (for the mean).
    pub sum_rounds: Round,
    /// Distribution of per-trial CC (`max_bits`) across trials.
    pub hist_max_bits: Histogram,
    /// Distribution of per-trial round counts across trials.
    pub hist_rounds: Histogram,
    /// Per-phase aggregates, keyed by label in first-encountered order
    /// (deterministic because trials are absorbed in seed order).
    pub phases: Vec<PhaseAgg>,
    /// Sum of watchdog violations over all trials.
    pub sum_violations: u64,
    /// Number of trials with at least one violation.
    pub violation_trials: usize,
    /// Per-worker runner breakdown, if the driver ran instrumented and
    /// attached it via [`TrialSummary::set_workers`]. Empty by default —
    /// absorbing trials never populates it, so summaries built from
    /// seed-ordered stats stay bit-identical across thread counts.
    pub workers: Vec<WorkerLoad>,
}

impl TrialSummary {
    /// Attaches the per-worker breakdown of the sweep that produced
    /// these trials (wall-clock load split; not deterministic).
    pub fn set_workers(&mut self, workers: Vec<WorkerLoad>) {
        self.workers = workers;
    }
    /// Folds one trial into the aggregate.
    pub fn absorb(&mut self, t: &TrialStats) {
        self.trials += 1;
        self.sum_violations += t.violations;
        self.violation_trials += usize::from(t.violations > 0);
        if t.max_bits > self.worst_max_bits || self.worst_seed.is_none() {
            self.worst_max_bits = t.max_bits;
            self.worst_seed = Some(t.seed);
        }
        self.sum_max_bits += t.max_bits;
        self.sum_total_bits += t.total_bits;
        self.max_rounds = self.max_rounds.max(t.rounds);
        self.sum_rounds += t.rounds;
        self.hist_max_bits.record(t.max_bits);
        self.hist_rounds.record(t.rounds);
        for ph in &t.phases {
            let agg = match self.phases.iter_mut().find(|a| a.label == ph.label) {
                Some(agg) => agg,
                None => {
                    self.phases.push(PhaseAgg { label: ph.label.clone(), ..PhaseAgg::default() });
                    self.phases.last_mut().expect("just pushed")
                }
            };
            agg.spans += 1;
            agg.sum_bits += ph.bits;
            agg.worst_bits = agg.worst_bits.max(ph.bits);
            agg.sum_sends += ph.sends;
            agg.sum_rounds += ph.rounds;
            agg.worst_rounds = agg.worst_rounds.max(ph.rounds);
        }
    }

    /// The cross-trial aggregate of one phase label, if any trial had it.
    pub fn phase(&self, label: &str) -> Option<&PhaseAgg> {
        self.phases.iter().find(|a| a.label == label)
    }

    /// Mean per-trial CC.
    pub fn mean_max_bits(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sum_max_bits as f64 / self.trials as f64
        }
    }

    /// Mean rounds per trial.
    pub fn mean_rounds(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sum_rounds as f64 / self.trials as f64
        }
    }
}

impl<'a> FromIterator<&'a TrialStats> for TrialSummary {
    fn from_iter<I: IntoIterator<Item = &'a TrialStats>>(iter: I) -> Self {
        let mut s = TrialSummary::default();
        for t in iter {
            s.absorb(t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_resolves_to_machine_parallelism() {
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(Runner::new(0).threads(), cores);
        // Explicit counts are honored up to the core count and clamped
        // beyond it; `exact` always bypasses the clamp.
        assert_eq!(Runner::new(3).threads(), 3.min(cores));
        assert_eq!(Runner::new(cores + 7).threads(), cores);
        assert_eq!(Runner::exact(cores + 7).threads(), cores + 7);
        assert_eq!(Runner::exact(0).threads(), 1);
    }

    #[test]
    fn results_are_in_seed_order_at_any_thread_count() {
        let seeds: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = seeds.iter().map(|&s| s.wrapping_mul(s) ^ 0xabcd).collect();
        for threads in [1, 2, 3, 8, 16] {
            let got = Runner::new(threads).run(&seeds, |s| s.wrapping_mul(s) ^ 0xabcd);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_trial_costs_still_merge_correctly() {
        // Make early seeds slow so work stealing reorders completion.
        let seeds: Vec<u64> = (0..24).collect();
        let got = Runner::exact(4).run(&seeds, |s| {
            if s < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            s + 1
        });
        assert_eq!(got, (1..=24).collect::<Vec<u64>>());
    }

    #[test]
    fn run_reduce_matches_serial_fold() {
        let seeds: Vec<u64> = (0..50).collect();
        let serial = seeds.iter().fold(0u64, |acc, &s| acc.wrapping_mul(3) ^ s);
        // A non-commutative fold: only seed-order reduction matches.
        let par =
            Runner::exact(8).run_reduce(&seeds, |s| s, 0u64, |acc, s| acc.wrapping_mul(3) ^ s);
        assert_eq!(par, serial);
    }

    #[test]
    fn empty_and_singleton_seed_lists() {
        let r = Runner::exact(8);
        assert_eq!(r.run(&[], |s| s), Vec::<u64>::new());
        assert_eq!(r.run(&[7], |s| s * 2), vec![14]);
    }

    #[test]
    #[should_panic(expected = "trial 3 exploded")]
    fn worker_panics_propagate() {
        let seeds: Vec<u64> = (0..8).collect();
        let _ = Runner::exact(2).run(&seeds, |s| {
            assert!(s != 3, "trial 3 exploded");
            s
        });
    }

    #[test]
    fn summary_is_order_insensitive_aggregate_of_stats() {
        let mut m = Metrics::new(3);
        m.record_send(NodeId(1), 2, 10, 1);
        m.record_send(NodeId(2), 3, 4, 1);
        let a = TrialStats::from_metrics(5, 3, &m);
        assert_eq!(a.max_bits, 10);
        assert_eq!(a.total_bits, 14);
        assert_eq!(a.bottleneck, Some(NodeId(1)));

        let b = TrialStats {
            seed: 6,
            rounds: 9,
            max_bits: 2,
            total_bits: 2,
            bottleneck: None,
            phases: vec![],
            violations: 0,
        }
        .with_violations(3);
        let s: TrialSummary = [&a, &b].into_iter().collect();
        assert_eq!(s.trials, 2);
        assert_eq!(s.sum_violations, 3);
        assert_eq!(s.violation_trials, 1);
        assert_eq!(s.worst_max_bits, 10);
        assert_eq!(s.worst_seed, Some(5));
        assert_eq!(s.max_rounds, 9);
        assert!((s.mean_max_bits() - 6.0).abs() < 1e-12);
        assert!((s.mean_rounds() - 6.0).abs() < 1e-12);
        assert_eq!(s.hist_max_bits.samples(), 2);
        assert_eq!(s.hist_max_bits.max(), 10);
        assert_eq!(s.hist_rounds.max(), 9);
    }

    #[test]
    fn histogram_buckets_quantiles_and_merge() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0, 1, 2, 3, 4, 8, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.samples(), 8);
        assert_eq!(h.max(), 1000);
        // p50 of 8 samples is rank 4 (value 3, bucket [2,3] → edge 3).
        assert_eq!(h.quantile(0.5), 3);
        // p90 is rank 8 (value 1000, bucket [512,1023] → edge capped at max).
        assert_eq!(h.quantile(0.9), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        // Merge equals recording the union, bucket by bucket.
        let mut a = Histogram::new();
        a.record(5);
        a.record(70);
        let mut b = Histogram::new();
        b.record(6);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = Histogram::new();
        for v in [5, 70, 6] {
            direct.record(v);
        }
        assert_eq!(merged, direct);
        assert_eq!(merged.bars(), vec![(4, 7, 2), (64, 127, 1)]);
        // A default (all-zero) histogram merges like an empty one.
        let mut d = Histogram::default();
        d.merge(&direct);
        assert_eq!(d, direct);
        d.record(0);
        assert_eq!(d.samples(), 4);
    }

    /// A counting sink for tests: remembers every completion it saw.
    #[derive(Default)]
    struct CountingSink {
        calls: Mutex<Vec<(usize, usize, usize)>>, // (completed, total, worker)
        violations: AtomicU64,
    }

    impl ProgressSink for CountingSink {
        fn trial_done(&self, p: &Progress) {
            self.calls.lock().unwrap().push((p.completed, p.total, p.worker));
        }

        fn add_violations(&self, n: u64) {
            self.violations.fetch_add(n, Ordering::Relaxed);
        }

        fn violations(&self) -> u64 {
            self.violations.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn progress_sink_sees_every_trial_once_and_results_match_plain_run() {
        let seeds: Vec<u64> = (0..31).collect();
        let expect = Runner::exact(4).run(&seeds, |s| s * 3);
        for threads in [1, 4] {
            let sink = CountingSink::default();
            let got = Runner::new(threads).run_progress(&seeds, |s| s * 3, &sink);
            assert_eq!(got, expect, "threads = {threads}");
            let calls = sink.calls.lock().unwrap();
            assert_eq!(calls.len(), seeds.len());
            // Each trial observes a distinct `completed` value 1..=total.
            let mut seen: Vec<usize> = calls.iter().map(|c| c.0).collect();
            seen.sort_unstable();
            assert_eq!(seen, (1..=seeds.len()).collect::<Vec<_>>());
            assert!(calls.iter().all(|c| c.1 == seeds.len()));
            let max_worker = calls.iter().map(|c| c.2).max().unwrap();
            assert!(max_worker < threads.max(1), "worker {max_worker} at {threads} threads");
        }
    }

    #[test]
    fn run_reduce_progress_matches_run_reduce() {
        let seeds: Vec<u64> = (0..40).collect();
        let plain = Runner::exact(8).run_reduce(&seeds, |s| s, 1u64, |a, s| a.wrapping_mul(3) ^ s);
        let sink = CountingSink::default();
        let with = Runner::exact(8).run_reduce_progress(
            &seeds,
            |s| s,
            1u64,
            |a, s| a.wrapping_mul(3) ^ s,
            &sink,
        );
        assert_eq!(with, plain);
        assert_eq!(sink.calls.lock().unwrap().len(), 40);
    }

    #[test]
    fn progress_throughput_eta_and_violations() {
        let sink = CountingSink::default();
        sink.add_violations(2);
        sink.add_violations(3);
        assert_eq!(sink.violations(), 5);
        let p = Progress {
            completed: 5,
            total: 20,
            worker: 1,
            elapsed: Duration::from_secs(2),
            violations: sink.violations(),
            p50_micros: 0,
            p99_micros: 0,
            straggler: None,
        };
        assert!((p.throughput() - 2.5).abs() < 1e-12);
        // 15 remaining at 2.5/s = 6 s.
        assert!((p.eta().as_secs_f64() - 6.0).abs() < 1e-9);
        assert_eq!(p.violations, 5);
        // Degenerate cases: no elapsed time, and a finished sweep.
        let zero = Progress { elapsed: Duration::ZERO, ..p };
        assert_eq!(zero.throughput(), 0.0);
        assert_eq!(zero.eta(), Duration::ZERO);
        let done = Progress { completed: 20, ..p };
        assert_eq!(done.eta(), Duration::ZERO);
        // The default-method sink ignores violations.
        struct Quiet;
        impl ProgressSink for Quiet {
            fn trial_done(&self, _: &Progress) {}
        }
        let q = Quiet;
        q.add_violations(7);
        assert_eq!(q.violations(), 0);
    }

    #[test]
    fn console_progress_line_renders_violations_only_when_present() {
        let p = Progress {
            completed: 3,
            total: 8,
            worker: 2,
            elapsed: Duration::from_secs(1),
            violations: 0,
            p50_micros: 0,
            p99_micros: 0,
            straggler: None,
        };
        let line = ConsoleProgress::line(&p);
        assert!(line.starts_with("[3/8]"), "{line}");
        assert!(line.contains("3.0 trials/s"), "{line}");
        assert!(!line.contains("VIOLATIONS"), "{line}");
        assert!(!line.contains("p99"), "uninstrumented line has no latency: {line}");
        let bad = Progress { violations: 4, ..p };
        assert!(ConsoleProgress::line(&bad).contains("VIOLATIONS 4"));
        // Instrumented fields render when populated.
        let instr = Progress { p50_micros: 120, p99_micros: 900, straggler: Some(3), ..p };
        let line = ConsoleProgress::line(&instr);
        assert!(line.contains("p50 120us p99 900us"), "{line}");
        assert!(line.contains("STRAGGLER worker 3"), "{line}");
        // The throttled sink counts violations like any other.
        let sink = ConsoleProgress::with_interval(Duration::from_secs(3600));
        sink.add_violations(9);
        assert_eq!(sink.violations(), 9);
        sink.trial_done(&bad); // throttled mid-sweep call: must not panic
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // Empty histogram: every quantile is 0 (and max/samples are 0).
        let empty = Histogram::new();
        assert_eq!(empty.samples(), 0);
        assert_eq!(empty.max(), 0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), 0, "q = {q}");
        }
        // A default (never-allocated) histogram behaves identically.
        let default = Histogram::default();
        assert_eq!(default.quantile(1.0), 0);
        assert_eq!(default.bars(), Vec::<(u64, u64, u64)>::new());

        // Single sample: every quantile resolves to that sample's bucket,
        // capped at the true maximum.
        let mut one = Histogram::new();
        one.record(100);
        for q in [0.0, 0.001, 0.5, 1.0] {
            assert_eq!(one.quantile(q), 100, "q = {q}");
        }
        // q = 0.0 clamps to rank 1 (the minimum's bucket), q = 1.0 is the
        // maximum — for a multi-sample histogram they straddle the data.
        let mut h = Histogram::new();
        for v in [1, 2, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
        // A zero-valued sample lives in the dedicated zero bucket.
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.quantile(1.0), 0);
        assert_eq!(z.bars(), vec![(0, 0, 1)]);
    }

    #[test]
    fn histogram_merge_with_disjoint_buckets() {
        // Low buckets only.
        let mut lo = Histogram::new();
        for v in [1, 2, 3] {
            lo.record(v);
        }
        // High buckets only — disjoint from lo's.
        let mut hi = Histogram::new();
        for v in [1 << 20, 1 << 30] {
            hi.record(v);
        }
        let mut merged = lo.clone();
        merged.merge(&hi);
        assert_eq!(merged.samples(), 5);
        assert_eq!(merged.max(), 1 << 30);
        // Bars are the union of both sides' bars, in ascending order.
        let mut expect = lo.bars();
        expect.extend(hi.bars());
        assert_eq!(merged.bars(), expect);
        // Quantiles bracket the two disjoint clusters.
        assert_eq!(merged.quantile(0.5), 3);
        assert_eq!(merged.quantile(1.0), 1 << 30);
        // Merging in the other direction gives the same histogram.
        let mut other = hi.clone();
        other.merge(&lo);
        assert_eq!(other, merged);
        // Merging an empty histogram is a no-op in both directions.
        let before = merged.clone();
        merged.merge(&Histogram::new());
        assert_eq!(merged, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn instrumented_run_matches_plain_and_merges_worker_hubs() {
        let seeds: Vec<u64> = (0..37).collect();
        let plain = Runner::exact(4).run(&seeds, |s| s.wrapping_mul(7) ^ 1);
        for threads in [1, 2, 4] {
            let (got, tele) =
                Runner::exact(threads).run_instrumented(&seeds, |s| s.wrapping_mul(7) ^ 1);
            assert_eq!(got, plain, "threads = {threads}");
            // Deterministic totals: every seed ran exactly once.
            assert_eq!(tele.trials(), seeds.len() as u64);
            let lat = tele.hub.histogram("runner_trial_micros").snapshot();
            assert_eq!(lat.count(), seeds.len() as u64);
            // One load row per worker, partitioning the trials.
            assert_eq!(tele.workers.len(), threads.min(seeds.len()));
            assert_eq!(tele.workers.iter().map(|w| w.trials).sum::<u64>(), seeds.len() as u64);
            for (i, w) in tele.workers.iter().enumerate() {
                assert_eq!(w.worker, i);
            }
            // Busy + idle wall time is accounted into the merged hub.
            let busy = tele.hub.counter("runner_busy_micros_total").get();
            let idle = tele.hub.counter("runner_idle_micros_total").get();
            let from_rows: u64 = tele.workers.iter().map(|w| w.busy.as_micros() as u64).sum();
            assert_eq!(busy, from_rows);
            let _ = idle; // non-negative by type; accounted per worker
                          // The table renders one aligned row per worker.
            let table = tele.workers_table();
            assert_eq!(table.lines().count(), 1 + tele.workers.len(), "{table}");
            assert!(table.contains("p99_us"), "{table}");
        }
    }

    #[test]
    fn instrumented_progress_carries_latency_and_results_stay_identical() {
        #[derive(Default)]
        struct LatencySink {
            saw_latency: AtomicU64,
            calls: AtomicU64,
        }
        impl ProgressSink for LatencySink {
            fn trial_done(&self, p: &Progress) {
                self.calls.fetch_add(1, Ordering::Relaxed);
                if p.p99_micros > 0 {
                    self.saw_latency.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let seeds: Vec<u64> = (0..16).collect();
        let slow = |s: u64| {
            std::thread::sleep(Duration::from_millis(1));
            s * 2
        };
        let plain = Runner::exact(2).run(&seeds, slow);
        let sink = LatencySink::default();
        let (got, tele) = Runner::exact(2).run_progress_instrumented(&seeds, slow, &sink);
        assert_eq!(got, plain);
        assert_eq!(sink.calls.load(Ordering::Relaxed), 16);
        // A 1 ms trial always lands at >= 1000 us, so every progress
        // call after the first has a nonzero p99.
        assert!(sink.saw_latency.load(Ordering::Relaxed) >= 15);
        assert!(tele.p50_micros() >= 1000, "p50 {}", tele.p50_micros());
        assert!(tele.p99_micros() >= tele.p50_micros());
    }

    #[test]
    fn timeline_run_records_trial_spans_on_worker_lanes() {
        use crate::timeline::{SpanKind, Timeline};
        let tl = Timeline::new();
        let seeds: Vec<u64> = (0..8).collect();
        let (got, _tele) =
            Runner::exact(2).run_instrumented_timeline(&seeds, |s, _lane| s * 3, &tl);
        assert_eq!(got, seeds.iter().map(|s| s * 3).collect::<Vec<_>>());
        let data = tl.snapshot();
        let trials: Vec<_> = data.spans.iter().filter(|s| s.kind == SpanKind::Trial).collect();
        assert_eq!(trials.len(), seeds.len(), "one Trial span per seed");
        for s in &trials {
            assert!(s.lane >= 1, "worker lanes start at 1, got {}", s.lane);
            assert!(s.arg.is_some(), "trial spans carry the seed");
        }
        assert_eq!(data.lanes.get(&1).map(String::as_str), Some("worker 0"));
        assert_eq!(data.lanes.get(&2).map(String::as_str), Some("worker 1"));
        // Results stay bit-identical to the unobserved run.
        assert_eq!(got, Runner::exact(2).run(&seeds, |s| s * 3));
    }

    #[test]
    fn straggler_rule_flags_only_a_dominant_worker() {
        assert_eq!(straggler_of(&[]), None);
        assert_eq!(straggler_of(&[100]), None, "one worker is never a straggler");
        assert_eq!(straggler_of(&[100, 110, 90]), None, "balanced load");
        // Worker 1 carries > 2x the mean (mean 200, max 500).
        assert_eq!(straggler_of(&[50, 500, 50]), Some(1));
        assert_eq!(straggler_of(&[0, 0]), None, "no signal before any work");
        // Regression: a lone active worker used to flag itself (mean
        // 250 by integer division, 501 > 500) even though its peers
        // simply had not claimed a trial yet.
        assert_eq!(straggler_of(&[501, 0]), None, "only one worker did any work");
        assert_eq!(straggler_of(&[0, 501, 0, 0]), None, "only one worker did any work");
        // ...but two active workers with a dominant one still flag.
        assert_eq!(straggler_of(&[0, 900, 100, 0]), Some(1));
    }

    #[test]
    fn summary_set_workers_attaches_but_absorb_never_populates() {
        let t = TrialStats {
            seed: 0,
            rounds: 1,
            max_bits: 1,
            total_bits: 1,
            bottleneck: None,
            phases: vec![],
            violations: 0,
        };
        let mut s: TrialSummary = [&t].into_iter().collect();
        assert!(s.workers.is_empty(), "absorbing trials must not invent workers");
        let (_, tele) = Runner::exact(2).run_instrumented(&[1, 2, 3, 4], |s| s);
        s.set_workers(tele.workers.clone());
        assert_eq!(s.workers.len(), 2);
    }

    #[test]
    fn summary_aggregates_phases_by_label() {
        use crate::metrics::PhaseStats;
        let ph = |label: &str, bits: u64, rounds: Round| PhaseStats {
            label: label.into(),
            start: 1,
            end: rounds,
            rounds,
            bits,
            sends: bits / 2,
            depth: 0,
        };
        let a = TrialStats {
            seed: 0,
            rounds: 10,
            max_bits: 5,
            total_bits: 9,
            bottleneck: None,
            phases: vec![ph("AGG", 6, 4), ph("VERI", 3, 6)],
            violations: 0,
        };
        let b = TrialStats {
            seed: 1,
            rounds: 12,
            max_bits: 7,
            total_bits: 11,
            bottleneck: None,
            phases: vec![ph("AGG", 8, 5)],
            violations: 0,
        };
        let s: TrialSummary = [&a, &b].into_iter().collect();
        assert_eq!(s.phases.len(), 2);
        let agg = s.phase("AGG").unwrap();
        assert_eq!((agg.spans, agg.sum_bits, agg.worst_bits), (2, 14, 8));
        assert_eq!((agg.sum_rounds, agg.worst_rounds), (9, 5));
        assert!((agg.mean_bits() - 7.0).abs() < 1e-12);
        let veri = s.phase("VERI").unwrap();
        assert_eq!((veri.spans, veri.sum_bits, veri.sum_sends), (1, 3, 1));
        assert!(s.phase("FALLBACK").is_none());
    }
}
