//! Deterministic parallel trial execution.
//!
//! Every experiment in this repository has the same outer shape: run one
//! simulated execution per seed, then aggregate. [`Runner`] fans a seed
//! list out over a pool of scoped worker threads with work stealing, and
//! returns the per-trial results **in seed order** — so any reduction over
//! them is bit-identical to a serial `for seed in seeds` loop, regardless
//! of thread count or OS scheduling. Determinism comes for free from the
//! model: a trial's outcome is a pure function of its seed (the engine has
//! no hidden randomness), and the runner never lets thread interleaving
//! reach the results.
//!
//! ```
//! use netsim::runner::Runner;
//!
//! let seeds: Vec<u64> = (0..32).collect();
//! let serial: Vec<u64> = seeds.iter().map(|&s| s * s).collect();
//! let parallel = Runner::new(4).run(&seeds, |s| s * s);
//! assert_eq!(serial, parallel);
//! ```

use crate::adversary::Round;
use crate::graph::NodeId;
use crate::metrics::Metrics;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Executes independent trials across a fixed-size thread pool.
///
/// Workers claim seeds through a shared atomic cursor (work stealing), so
/// an expensive trial does not stall the others; each worker buffers
/// `(index, result)` pairs locally, and the buffers are merged back into
/// seed order after the pool joins. No locks are held while trials run.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner over `threads` workers. `0` selects the machine's
    /// available parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Runner { threads }
    }

    /// The worker count this runner was resolved to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trial` once per seed and returns the results in seed order.
    ///
    /// With the same seeds, the returned vector is byte-identical for any
    /// thread count (including 1), because results are re-ordered by seed
    /// index before being returned.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any trial that panicked.
    pub fn run<T, F>(&self, seeds: &[u64], trial: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        if self.threads <= 1 || seeds.len() <= 1 {
            return seeds.iter().map(|&s| trial(s)).collect();
        }
        let workers = self.threads.min(seeds.len());
        let cursor = AtomicUsize::new(0);
        let trial = &trial;
        let buckets: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&seed) = seeds.get(i) else { break };
                            out.push((i, trial(seed)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(bucket) => bucket,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        // Merge the workers' buckets back into seed order.
        let mut slots: Vec<Option<T>> = (0..seeds.len()).map(|_| None).collect();
        for bucket in buckets {
            for (i, t) in bucket {
                slots[i] = Some(t);
            }
        }
        slots.into_iter().map(|s| s.expect("every claimed seed produces a result")).collect()
    }

    /// Runs `trial` per seed, then folds the results serially **in seed
    /// order** — the parallel equivalent of
    /// `seeds.iter().fold(init, |acc, &s| reduce(acc, trial(s)))`.
    pub fn run_reduce<T, A, F, R>(&self, seeds: &[u64], trial: F, init: A, mut reduce: R) -> A
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
        R: FnMut(A, T) -> A,
    {
        self.run(seeds, trial).into_iter().fold(init, &mut reduce)
    }
}

/// The measurements one trial contributes to an aggregate sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialStats {
    /// The seed that produced this trial.
    pub seed: u64,
    /// Rounds the execution ran.
    pub rounds: Round,
    /// The paper's CC: maximum bits over nodes.
    pub max_bits: u64,
    /// System-wide bits.
    pub total_bits: u64,
    /// The node achieving `max_bits` (lowest id on ties).
    pub bottleneck: Option<NodeId>,
}

impl TrialStats {
    /// Extracts the stats of a finished execution.
    pub fn from_metrics(seed: u64, rounds: Round, metrics: &Metrics) -> Self {
        TrialStats {
            seed,
            rounds,
            max_bits: metrics.max_bits(),
            total_bits: metrics.total_bits(),
            bottleneck: metrics.bottleneck(),
        }
    }
}

/// Order-insensitive aggregate of many [`TrialStats`].
///
/// Everything here is a max, min, sum, or count, so absorbing trials in
/// seed order (which [`Runner::run`] guarantees) gives bit-identical
/// summaries across thread counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrialSummary {
    /// Trials absorbed.
    pub trials: usize,
    /// Worst per-trial CC seen.
    pub worst_max_bits: u64,
    /// The seed achieving `worst_max_bits` (first in seed order on ties).
    pub worst_seed: Option<u64>,
    /// Sum of per-trial CCs (for the mean).
    pub sum_max_bits: u64,
    /// Sum of per-trial total bits.
    pub sum_total_bits: u64,
    /// Longest execution.
    pub max_rounds: Round,
    /// Sum of rounds (for the mean).
    pub sum_rounds: Round,
}

impl TrialSummary {
    /// Folds one trial into the aggregate.
    pub fn absorb(&mut self, t: &TrialStats) {
        self.trials += 1;
        if t.max_bits > self.worst_max_bits || self.worst_seed.is_none() {
            self.worst_max_bits = t.max_bits;
            self.worst_seed = Some(t.seed);
        }
        self.sum_max_bits += t.max_bits;
        self.sum_total_bits += t.total_bits;
        self.max_rounds = self.max_rounds.max(t.rounds);
        self.sum_rounds += t.rounds;
    }

    /// Mean per-trial CC.
    pub fn mean_max_bits(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sum_max_bits as f64 / self.trials as f64
        }
    }

    /// Mean rounds per trial.
    pub fn mean_rounds(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sum_rounds as f64 / self.trials as f64
        }
    }
}

impl<'a> FromIterator<&'a TrialStats> for TrialSummary {
    fn from_iter<I: IntoIterator<Item = &'a TrialStats>>(iter: I) -> Self {
        let mut s = TrialSummary::default();
        for t in iter {
            s.absorb(t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_resolves_to_machine_parallelism() {
        assert!(Runner::new(0).threads() >= 1);
        assert_eq!(Runner::new(3).threads(), 3);
    }

    #[test]
    fn results_are_in_seed_order_at_any_thread_count() {
        let seeds: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = seeds.iter().map(|&s| s.wrapping_mul(s) ^ 0xabcd).collect();
        for threads in [1, 2, 3, 8, 16] {
            let got = Runner::new(threads).run(&seeds, |s| s.wrapping_mul(s) ^ 0xabcd);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_trial_costs_still_merge_correctly() {
        // Make early seeds slow so work stealing reorders completion.
        let seeds: Vec<u64> = (0..24).collect();
        let got = Runner::new(4).run(&seeds, |s| {
            if s < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            s + 1
        });
        assert_eq!(got, (1..=24).collect::<Vec<u64>>());
    }

    #[test]
    fn run_reduce_matches_serial_fold() {
        let seeds: Vec<u64> = (0..50).collect();
        let serial = seeds.iter().fold(0u64, |acc, &s| acc.wrapping_mul(3) ^ s);
        // A non-commutative fold: only seed-order reduction matches.
        let par = Runner::new(8).run_reduce(&seeds, |s| s, 0u64, |acc, s| acc.wrapping_mul(3) ^ s);
        assert_eq!(par, serial);
    }

    #[test]
    fn empty_and_singleton_seed_lists() {
        let r = Runner::new(8);
        assert_eq!(r.run(&[], |s| s), Vec::<u64>::new());
        assert_eq!(r.run(&[7], |s| s * 2), vec![14]);
    }

    #[test]
    #[should_panic(expected = "trial 3 exploded")]
    fn worker_panics_propagate() {
        let seeds: Vec<u64> = (0..8).collect();
        let _ = Runner::new(2).run(&seeds, |s| {
            assert!(s != 3, "trial 3 exploded");
            s
        });
    }

    #[test]
    fn summary_is_order_insensitive_aggregate_of_stats() {
        let mut m = Metrics::new(3);
        m.record_send(NodeId(1), 2, 10, 1);
        m.record_send(NodeId(2), 3, 4, 1);
        let a = TrialStats::from_metrics(5, 3, &m);
        assert_eq!(a.max_bits, 10);
        assert_eq!(a.total_bits, 14);
        assert_eq!(a.bottleneck, Some(NodeId(1)));

        let b = TrialStats { seed: 6, rounds: 9, max_bits: 2, total_bits: 2, bottleneck: None };
        let s: TrialSummary = [&a, &b].into_iter().collect();
        assert_eq!(s.trials, 2);
        assert_eq!(s.worst_max_bits, 10);
        assert_eq!(s.worst_seed, Some(5));
        assert_eq!(s.max_rounds, 9);
        assert!((s.mean_max_bits() - 6.0).abs() < 1e-12);
        assert!((s.mean_rounds() - 6.0).abs() < 1e-12);
    }
}
