//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! This workspace builds in hermetic containers with no crates.io access,
//! so the handful of `rand` APIs the experiments use are reimplemented here
//! behind the same names and signatures: [`Rng::gen_range`] /
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic given a seed
//! (the whole repo seeds explicitly — `thread_rng` is intentionally absent
//! so no code path can smuggle in nondeterminism).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded via
//! SplitMix64 — not the ChaCha12 of upstream `rand`, so seeded *streams*
//! differ from upstream, but every property the tests rely on (determinism,
//! uniformity, independence across seeds) holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range usable with [`Rng::gen_range`] (mirrors `rand::distributions::
/// uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// True iff the range contains no values.
    fn is_empty(&self) -> bool;
}

/// Draws a uniform value in `0..span` (`span > 0`) without modulo bias,
/// via Lemire's widening-multiply rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
            fn is_empty(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
            fn is_empty(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(uniform_below(rng, span) as $u) as $t
            }
            fn is_empty(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $u).wrapping_add(uniform_below(rng, span + 1) as $u) as $t
            }
            fn is_empty(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_sample_range_float {
    ($($t:ty : $bits:expr),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Uniform in [0, 1) from the top mantissa bits, then scale.
                let unit =
                    (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                let x = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if x < self.end { x } else { self.start }
            }
            fn is_empty(&self) -> bool {
                self.start >= self.end || self.start.is_nan() || self.end.is_nan()
            }
        }
    )*};
}

impl_sample_range_float!(f32: 24, f64: 53);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits, the conventional f64-in-[0,1) recipe.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same expansion
    /// scheme upstream `rand` uses) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion generator.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Statistically strong, tiny state, and — unlike upstream's ChaCha12
    /// `StdRng` — trivially auditable. Streams differ from upstream `rand`
    /// for the same seed; nothing in this repo depends on upstream streams.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // The all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the small generator is the same xoshiro here.
    pub type SmallRng = StdRng;
}

/// Slice helpers (mirrors `rand::seq::SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..10).map(|_| c.gen_range(0u64..1 << 40)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..10).map(|_| d.gen_range(0u64..1 << 40)).collect();
        assert_ne!(same, other, "different seeds should diverge");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&z));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(8u64..=8), 8);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
