//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! wall-clock harness: per benchmark it warms up, runs a fixed number of
//! timed samples, and prints min/mean/max time per iteration. No
//! statistical analysis, HTML reports, or baseline comparisons; the point
//! is that `cargo bench` runs hermetically and prints honest numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, printed `name/param`.
    pub fn new<P: std::fmt::Display>(name: &str, param: P) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed iterations of one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`: a short warmup, then `sample_count` timed samples of a
    /// batch of calls each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: aim for samples of at least ~1ms.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{label:<44} time: [{} {} {}]", fmt_dur(*min), fmt_dur(mean), fmt_dur(*max));
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op shim).
    pub fn finish(self) {}
}

/// The benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies CLI-style configuration: the first non-flag argument acts
    /// as a substring filter on benchmark labels (like upstream).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks `f` under `id` (ungrouped).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.run_one(&label, 10, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input (ungrouped).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run_one(&label, 10, |b| f(b, input));
        self
    }

    fn run_one(&mut self, label: &str, sample_count: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_count };
        f(&mut bencher);
        report(label, &bencher.samples);
    }

    /// Final reporting hook (a no-op shim; numbers print as benches run).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, like upstream's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more group functions, like upstream's
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("rank", 7).to_string(), "rank/7");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran >= 3, "body should run at least once per sample: {ran}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_dur(Duration::from_micros(34)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(56)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).ends_with('s'));
    }
}
