//! E10 — CAAF generality: the paper's protocols never look inside the
//! aggregation operator, so swapping `+` for any commutative/associative
//! `◇` must preserve every guarantee. This runs the *same* Algorithm 1
//! over SUM, COUNT, MAX, MIN, OR, AND, GCD and a modular sum, plus the
//! MEDIAN-via-COUNT reduction, under failures.

use caaf::oracle::modsum_correct;
use caaf::query::kth_smallest_by_counts;
use caaf::{BoolAnd, BoolOr, Caaf, Count, Gcd, Max, Min, ModSum, Sum};
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{adversary::schedules, topology, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

fn make(seed: u64, max_input: u64) -> Option<(Instance, TradeoffConfig)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = topology::connected_gnp(20, 0.15, &mut rng);
    let horizon = 100 * u64::from(g.diameter());
    let s = schedules::random(&g, NodeId(0), 3, horizon, &mut rng);
    if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
        return None;
    }
    let inputs: Vec<u64> = (0..20).map(|_| rng.gen_range(0..=max_input)).collect();
    let inst = Instance::new(g, NodeId(0), inputs, s, max_input).unwrap();
    let cfg = TradeoffConfig { b: 63, c: C, f: inst.edge_failures().max(1), seed };
    Some((inst, cfg))
}

fn check_operator<C2: Caaf + 'static>(op: &C2, max_input: u64) {
    let mut checked = 0;
    for seed in 0..20u64 {
        let Some((inst, cfg)) = make(seed, max_input.min(op.max_allowed_input())) else {
            continue;
        };
        let r = run_tradeoff(op, &inst, &cfg);
        assert!(
            r.correct,
            "{} seed {seed}: result {} outside correct interval",
            op.name(),
            r.result
        );
        checked += 1;
    }
    assert!(checked >= 10, "{}: too few valid instances", op.name());
}

#[test]
fn sum_count_max_or() {
    check_operator(&Sum, 50);
    check_operator(&Count, 1);
    check_operator(&Max, 1000);
    check_operator(&BoolOr, 1);
}

#[test]
fn min_and_gcd() {
    check_operator(&Min::new(1000), 1000);
    check_operator(&BoolAnd, 1);
    check_operator(&Gcd, 240);
}

#[test]
fn modular_sum_with_exact_oracle() {
    // ModSum is not order-monotone, so check against the exact
    // reachability oracle rather than the interval.
    let op = ModSum::new(97);
    let mut checked = 0;
    for seed in 100..130u64 {
        let Some((inst, cfg)) = make(seed, 96) else { continue };
        let r = run_tradeoff(&op, &inst, &cfg);
        // Mandatory inputs: alive & root-connected at the end.
        let dead = inst.schedule.dead_by(r.rounds);
        let alive: std::collections::HashSet<_> =
            inst.graph.reachable_from(inst.root, &dead).into_iter().collect();
        let mut mandatory = Vec::new();
        let mut optional = Vec::new();
        for v in inst.graph.nodes() {
            if alive.contains(&v) {
                mandatory.push(inst.inputs[v.index()]);
            } else {
                optional.push(inst.inputs[v.index()]);
            }
        }
        assert!(
            modsum_correct(&op, r.result, &mandatory, &optional),
            "seed {seed}: modsum result {} not reachable",
            r.result
        );
        checked += 1;
    }
    assert!(checked >= 15);
}

#[test]
fn median_via_count_under_failures() {
    let mut rng = StdRng::seed_from_u64(55);
    let g = topology::grid(5, 5);
    let n = g.len();
    let domain = 255u64;
    let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=domain)).collect();
    let mut s = netsim::FailureSchedule::none();
    s.crash(NodeId(7), 40);
    let k = (n as u64).div_ceil(2);

    let got = kth_smallest_by_counts(
        |x| {
            let ind: Vec<u64> = values.iter().map(|&v| u64::from(v <= x)).collect();
            let inst = Instance::new(g.clone(), NodeId(0), ind, s.clone(), 1).unwrap();
            let cfg = TradeoffConfig { b: 63, c: C, f: 4, seed: x };
            let r = run_tradeoff(&Count, &inst, &cfg);
            assert!(r.correct);
            r.result
        },
        domain,
        k,
    )
    .expect("median exists");

    // The distributed median may differ from the centralized one only by
    // the failed node's contribution: rank shifts by at most 1.
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let lo = sorted[(k as usize - 1).saturating_sub(1)];
    let hi = sorted[(k as usize).min(n - 1)];
    assert!((lo..=hi).contains(&got), "median {got} outside tolerance [{lo}, {hi}]");
}
