//! Partial-broadcast crashes: a node's *final* local broadcast reaches only
//! an adversary-chosen subset of neighbors (crash in the middle of the
//! radio transmission). The protocols' correctness must survive this
//! strictly stronger adversary.

use caaf::Sum;
use ftagg::baselines::run_brute;
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{topology, FailureSchedule, NodeId};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

const C: u32 = 2;

fn random_partial_schedule(
    g: &netsim::Graph,
    k: usize,
    horizon: u64,
    rng: &mut StdRng,
) -> FailureSchedule {
    let mut s = FailureSchedule::none();
    let mut pool: Vec<NodeId> = g.nodes().filter(|&v| v != NodeId(0)).collect();
    pool.shuffle(rng);
    for &v in pool.iter().take(k) {
        let round = rng.gen_range(2..=horizon);
        let nbrs = g.neighbors(v);
        let keep = rng.gen_range(0..=nbrs.len());
        let mut rx: Vec<NodeId> = nbrs.to_vec();
        rx.shuffle(rng);
        rx.truncate(keep);
        s.crash_partial(v, round, rx);
    }
    s
}

#[test]
fn tradeoff_survives_partial_broadcast_crashes() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut checked = 0;
    for trial in 0..40u64 {
        let g = topology::connected_gnp(22, 0.15, &mut rng);
        let horizon = 63 * u64::from(g.diameter());
        let s = random_partial_schedule(&g, rng.gen_range(0..5), horizon, &mut rng);
        if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
            continue;
        }
        let inputs: Vec<u64> = (0..22).map(|_| rng.gen_range(0..64)).collect();
        let inst = Instance::new(g, NodeId(0), inputs, s, 63).unwrap();
        let cfg = TradeoffConfig { b: 63, c: C, f: inst.edge_failures().max(1), seed: trial };
        let r = run_tradeoff(&Sum, &inst, &cfg);
        assert!(r.correct, "trial {trial}: result {} incorrect under partial broadcasts", r.result);
        checked += 1;
    }
    assert!(checked >= 25, "want coverage, got {checked}");
}

#[test]
fn brute_force_survives_partial_broadcast_crashes() {
    let mut rng = StdRng::seed_from_u64(33);
    for trial in 0..40u64 {
        let g = topology::connected_gnp(18, 0.18, &mut rng);
        let horizon = 4 * u64::from(C) * u64::from(g.diameter());
        let s = random_partial_schedule(&g, rng.gen_range(0..6), horizon, &mut rng);
        if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
            continue;
        }
        let inputs: Vec<u64> = (0..18).map(|_| rng.gen_range(0..32)).collect();
        let inst = Instance::new(g, NodeId(0), inputs, s, 31).unwrap();
        let r = run_brute(&Sum, &inst, inst.schedule.clone(), C, 0);
        assert!(r.correct, "trial {trial}: brute result {} incorrect", r.result);
    }
}

#[test]
fn targeted_partial_loses_only_dead_inputs() {
    // Node 1 (level 1 on a star-ish graph) sends its aggregation but the
    // broadcast reaches only its child, not the root: the root treats it
    // as a critical failure and the child's speculative flood recovers.
    let g = netsim::Graph::new(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]).unwrap();
    let d = u64::from(g.diameter()); // 2
    let cd = u64::from(C) * d;
    let action_1 = (2 * cd + 1) + (cd - 1 + 1);
    let mut s = FailureSchedule::none();
    // Final broadcast = the aggregation message sent at action_1; deliver
    // it to child 2 only (not to the root).
    s.crash_partial(NodeId(1), action_1 + 1, vec![NodeId(2)]);
    let inst = Instance::new(g, NodeId(0), vec![1, 10, 100, 1000], s, 1000).unwrap();
    let cfg = TradeoffConfig { b: 21 * u64::from(C), c: C, f: 2, seed: 0 };
    let r = run_tradeoff(&Sum, &inst, &cfg);
    assert!(r.correct);
    // Nodes 0, 2, 3 stay alive and connected: only node 1's input (10) may
    // be missing.
    assert!(r.result >= 1 + 100 + 1000, "live inputs lost: {}", r.result);
}
