//! Property suite for the struct-of-arrays engine rebuild (`netsim::soa`):
//!
//! 1. the message arena never aliases live messages — payloads read from a
//!    SoA inbox are byte-identical to what the sender enqueued, on every
//!    round of randomized chatter, while the whole run stays bit-identical
//!    to the classic engine;
//! 2. the bit-packed flood lane ([`BitFlood`]) round-trips exactly against
//!    the dense per-message representation: same deliveries, same bit
//!    meters, same per-node seen sets, under clean and partial crashes;
//! 3. delta-encoded traces ([`DeltaSink`]) decode to the v2 JSONL schema
//!    byte for byte against [`JsonlSink`] on the same event stream.

use netsim::testkit::{assert_equivalent, capture_classic, capture_soa};
use netsim::{
    topology, BitFlood, DeltaSink, Engine, Event, FailureSchedule, FloodState, Graph, JsonlSink,
    Message, NodeId, NodeLogic, Round, RoundCtx, SoaEngine, Trace, TraceSink,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;

// ---------------------------------------------------------------------
// Shared randomized environment
// ---------------------------------------------------------------------

fn random_setup(seed: u64, n: usize, crashes: usize, horizon: Round) -> (Graph, FailureSchedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match seed % 3 {
        0 => topology::connected_gnp(n, 0.3, &mut rng),
        1 => topology::random_tree(n, &mut rng),
        _ => topology::grid(2.max(n / 3), 3),
    };
    let n = g.len();
    let mut s = FailureSchedule::none();
    for _ in 0..crashes {
        let v = NodeId(rng.gen_range(1..n as u32));
        let r = rng.gen_range(1..=horizon);
        if rng.gen_bool(0.4) {
            // Partial broadcast: the crashing node's last message reaches
            // only a random subset of its neighbors.
            let rx: Vec<NodeId> =
                g.neighbors(v).iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
            s.crash_partial(v, r, rx);
        } else {
            s.crash(v, r);
        }
    }
    (g, s)
}

// ---------------------------------------------------------------------
// 1. Arena aliasing: payload integrity + full classic/SoA equivalence
// ---------------------------------------------------------------------

/// A message whose payload is a pure function of (sender, round, copy):
/// any arena aliasing or premature reuse shows up as a payload that no
/// longer matches its header.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Blob {
    from: NodeId,
    sent_round: Round,
    copy: u8,
    payload: Vec<u8>,
}

fn blob_payload(seed: u64, v: NodeId, r: Round, copy: u8) -> Vec<u8> {
    let mut x = seed ^ (u64::from(v.0) << 32) ^ (r << 8) ^ u64::from(copy);
    (0..(1 + (x % 13) as usize))
        .map(|_| {
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            (x >> 56) as u8
        })
        .collect()
}

impl Message for Blob {
    fn bit_len(&self) -> u64 {
        16 + 8 * self.payload.len() as u64
    }
}

/// Sends 0–2 fresh blobs a round and verifies every delivered payload
/// against its header before recording it.
struct Chatter {
    me: NodeId,
    seed: u64,
    received: Vec<(NodeId, Round, u8)>,
}

impl NodeLogic<Blob> for Chatter {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Blob>) {
        let r = ctx.round();
        for m in ctx.inbox().iter() {
            assert_eq!(
                m.msg.payload,
                blob_payload(self.seed, m.msg.from, m.msg.sent_round, m.msg.copy),
                "aliased or corrupted payload from {} (sent round {})",
                m.msg.from,
                m.msg.sent_round
            );
            self.received.push((m.from, m.msg.sent_round, m.msg.copy));
        }
        let copies = (self.seed ^ u64::from(self.me.0) ^ r) % 3;
        for copy in 0..copies as u8 {
            ctx.send(Blob {
                from: self.me,
                sent_round: r,
                copy,
                payload: blob_payload(self.seed, self.me, r, copy),
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized chatter with fresh multi-copy payloads every round: the
    /// SoA arena must hand every receiver exactly the bytes the sender
    /// enqueued (checked inside `on_round`), and the full run — trace
    /// bytes, bit ledgers, telemetry — must be bit-identical to the
    /// classic engine's.
    #[test]
    fn arena_never_aliases_live_messages(
        seed in 0u64..1_000_000,
        n in 3usize..16,
        crashes in 0usize..4,
    ) {
        let horizon: Round = 12;
        let (g, s) = random_setup(seed, n, crashes, horizon);

        let mut classic = Engine::new(g.clone(), s.clone(), |v| Chatter {
            me: v, seed, received: Vec::new(),
        });
        classic.enable_trace();
        classic.run(horizon);

        let mut soa = SoaEngine::new(g.clone(), s, |v| Chatter {
            me: v, seed, received: Vec::new(),
        });
        soa.enable_trace();
        soa.run(horizon);

        assert_equivalent(
            &capture_classic(&classic),
            &capture_soa(&soa),
            &format!("chatter seed {seed}"),
        );
        // The per-node delivery logs (order included) agree too — the
        // inbox visit order is part of the pinned semantics.
        for v in g.nodes() {
            prop_assert_eq!(
                &classic.node(v).received,
                &soa.node(v).received,
                "node {} delivery log", v
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2. Bit-packed flood summaries vs the dense representation
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Tok(NodeId);

impl Message for Tok {
    fn bit_len(&self) -> u64 {
        48
    }
}

/// The dense reference: per-message flooding with a [`FloodState`] set.
struct DenseFlood {
    me: NodeId,
    origin: bool,
    flood: FloodState<Tok>,
    seen_list: Vec<NodeId>,
}

impl NodeLogic<Tok> for DenseFlood {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Tok>) {
        if ctx.round() == 1 && self.origin {
            let t = Tok(self.me);
            self.flood.mark_seen(t.clone());
            self.seen_list.push(self.me);
            ctx.send(t);
        }
        let inbox: Vec<Tok> = ctx.inbox().iter().map(|m| (*m.msg).clone()).collect();
        for t in inbox {
            if self.flood.first_sighting(t.clone()) {
                self.seen_list.push(t.0);
                ctx.send(t);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The bit-packed lane reports exactly the dense engine's counters:
    /// deliveries, total/max bits, per-node bits, and per-node seen sets,
    /// for random origin subsets under clean and partial crashes.
    #[test]
    fn bit_packed_summaries_round_trip_against_dense(
        seed in 0u64..1_000_000,
        n in 3usize..18,
        crashes in 0usize..4,
    ) {
        let (g, s) = random_setup(seed.wrapping_add(7), n, crashes, 9);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let origins: Vec<NodeId> =
            g.nodes().filter(|_| rng.gen_bool(0.5)).collect();
        let horizon = 2 * Round::from(g.diameter()) + 2;

        let og = origins.clone();
        let mut eng = Engine::new(g.clone(), s.clone(), move |v| DenseFlood {
            me: v,
            origin: og.contains(&v),
            flood: FloodState::new(),
            seen_list: Vec::new(),
        });
        eng.run(horizon);

        let mut lane = BitFlood::new(g.clone(), &s, &origins, 48);
        let rep = lane.run(horizon);

        prop_assert_eq!(rep.deliveries, eng.telemetry().deliveries, "deliveries");
        prop_assert_eq!(rep.total_bits, eng.metrics().total_bits(), "total bits");
        prop_assert_eq!(rep.max_bits, eng.metrics().max_bits(), "max bits (CC)");
        for v in g.nodes() {
            prop_assert_eq!(lane.bits_of(v), eng.metrics().bits_of(v), "bits of {}", v);
            let mut dense_seen = eng.node(v).seen_list.clone();
            dense_seen.sort_unstable();
            prop_assert_eq!(lane.seen_tokens(v), dense_seen, "seen set of {}", v);
        }
    }
}

// ---------------------------------------------------------------------
// 3. Delta-encoded traces decode to v2 JSONL byte for byte
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Feed one randomized execution's event stream (sends with kinds and
    /// lineage, delivers, crashes, phases, a decision) through both sinks:
    /// the delta stream must decode to exactly the JSONL bytes, and it
    /// must be materially smaller than what it encodes.
    #[test]
    fn delta_traces_decode_to_v2_jsonl_byte_for_byte(
        seed in 0u64..1_000_000,
        n in 3usize..14,
        crashes in 0usize..4,
    ) {
        let horizon: Round = 10;
        let (g, s) = random_setup(seed.wrapping_add(13), n, crashes, horizon);
        let mut eng = SoaEngine::new(g, s, |v| Chatter { me: v, seed, received: Vec::new() });
        eng.set_sink(Box::new(Trace::new()));
        eng.enter_phase("A");
        eng.run(horizon / 2);
        eng.exit_phase();
        eng.enter_phase("B");
        eng.run(horizon);
        eng.exit_phase();
        eng.annotate(Event::Decide { round: horizon, node: NodeId(0), value: seed });
        let sink = eng.take_sink().expect("trace sink installed");
        let trace = (sink as Box<dyn Any>).downcast::<Trace>().expect("the Trace we installed");

        // Reference bytes: JsonlSink over the identical event stream.
        let mut jsonl = JsonlSink::new(Vec::<u8>::new());
        let mut delta = DeltaSink::new();
        for e in trace.events() {
            jsonl.record(e);
            delta.record(e);
        }
        let reference = String::from_utf8(jsonl.finish().unwrap()).unwrap();
        prop_assert_eq!(delta.event_count(), trace.events().len() as u64);
        let decoded = DeltaSink::decode_to_jsonl(delta.bytes()).unwrap();
        prop_assert_eq!(&decoded, &reference, "delta stream decodes to the v2 JSONL bytes");
        // The whole point of the encoding: materially smaller than JSONL.
        if trace.events().len() > 20 {
            prop_assert!(
                delta.bytes().len() * 3 < reference.len(),
                "delta stream ({} B) should be < 1/3 of JSONL ({} B)",
                delta.bytes().len(),
                reference.len()
            );
        }
    }
}
