//! Version-skew guard for the JSONL trace schema.
//!
//! The contract: whatever `JsonlSink` writes, `Trace::from_jsonl` must be
//! able to read back losslessly (writer and reader can never drift apart
//! within one build), the reader must still accept the previous schema
//! version (v1, no lineage fields), and must refuse versions it does not
//! speak with an actionable error. CI runs this suite so a schema bump
//! that forgets either side fails before it ships.

use netsim::{
    Event, EventId, JsonlSink, NodeId, Trace, TraceSink, TRACE_SCHEMA_COMPAT_MIN,
    TRACE_SCHEMA_VERSION,
};

/// One event of every variant, with every v2 field populated (ids, kind,
/// multi-parent lineage, src) plus v1-shaped siblings with the fields
/// empty — the full surface the writer can emit.
fn every_variant() -> Vec<Event> {
    vec![
        Event::PhaseEnter { round: 1, label: "AGG".into() },
        Event::Send {
            round: 1,
            node: NodeId(0),
            bits: 7,
            logical: 1,
            id: EventId(1),
            kind: "tree-construct".into(),
            causes: vec![],
        },
        Event::send(1, NodeId(2), 3, 1), // v1-shaped: no id/kind/causes
        Event::Deliver {
            round: 2,
            node: NodeId(1),
            from: NodeId(0),
            bits: 7,
            id: EventId(2),
            src: EventId(1),
        },
        Event::deliver(2, NodeId(0), NodeId(2), 3), // v1-shaped: no id/src
        Event::Crash { round: 2, node: NodeId(2) },
        Event::Send {
            round: 2,
            node: NodeId(1),
            bits: 11,
            logical: 2,
            id: EventId(3),
            kind: "veri".into(),
            causes: vec![EventId(2), EventId(1)],
        },
        Event::PhaseExit { round: 2, label: "AGG".into() },
        Event::Decide { round: 3, node: NodeId(0), value: 42 },
    ]
}

#[test]
fn jsonl_sink_output_round_trips_through_from_jsonl() {
    let mut sink = JsonlSink::new(Vec::new());
    let events = every_variant();
    for e in &events {
        sink.record(e);
    }
    let bytes = sink.finish().unwrap();
    let trace = Trace::from_jsonl(bytes.as_slice())
        .expect("the reader must accept what the writer of the same build emits");
    assert_eq!(trace.events(), events.as_slice());
}

#[test]
// The "constant" assertion is the point: it re-evaluates at every build,
// tripping when a version bump leaves the compat window inverted.
#[allow(clippy::assertions_on_constants)]
fn emitted_header_is_within_the_readers_compat_window() {
    // The skew guard proper: the version the sink stamps must be one the
    // reader declares support for. If someone bumps TRACE_SCHEMA_VERSION
    // without teaching from_jsonl the new fields, the round-trip test
    // above catches the field loss; this catches a forgotten window bump.
    assert!(TRACE_SCHEMA_COMPAT_MIN <= TRACE_SCHEMA_VERSION);
    let sink = JsonlSink::new(Vec::new());
    let bytes = sink.finish().unwrap();
    let header = String::from_utf8(bytes).unwrap();
    assert_eq!(
        header.trim(),
        format!("{{\"schema\":\"ftagg-trace\",\"v\":{TRACE_SCHEMA_VERSION}}}")
    );
    assert!(Trace::from_jsonl(header.as_bytes()).is_ok());
}

#[test]
fn v1_traces_parse_with_empty_lineage() {
    let v1 = concat!(
        "{\"schema\":\"ftagg-trace\",\"v\":1}\n",
        "{\"ev\":\"send\",\"r\":1,\"n\":0,\"bits\":7,\"logical\":1}\n",
        "{\"ev\":\"deliver\",\"r\":2,\"n\":1,\"from\":0,\"bits\":7}\n",
        "{\"ev\":\"decide\",\"r\":3,\"n\":0,\"value\":9}\n",
    );
    let trace = Trace::from_jsonl(v1.as_bytes()).expect("v1 must remain readable");
    assert_eq!(trace.events().len(), 3);
    match &trace.events()[0] {
        Event::Send { id, kind, causes, .. } => {
            assert_eq!(*id, EventId::NONE);
            assert!(kind.is_empty());
            assert!(causes.is_empty());
        }
        other => panic!("expected Send, got {other:?}"),
    }
    match &trace.events()[1] {
        Event::Deliver { id, src, .. } => {
            assert_eq!(*id, EventId::NONE);
            assert_eq!(*src, EventId::NONE);
        }
        other => panic!("expected Deliver, got {other:?}"),
    }
}

#[test]
fn future_schema_versions_are_refused() {
    let next = TRACE_SCHEMA_VERSION + 1;
    let input = format!("{{\"schema\":\"ftagg-trace\",\"v\":{next}}}\n");
    let err = Trace::from_jsonl(input.as_bytes()).unwrap_err();
    assert!(err.contains(&format!("trace schema v{next} unsupported")), "unexpected error: {err}");
    assert!(err.contains(&format!("v{TRACE_SCHEMA_COMPAT_MIN}..=v{TRACE_SCHEMA_VERSION}")));
}

#[test]
fn pre_compat_versions_are_refused() {
    if TRACE_SCHEMA_COMPAT_MIN == 0 {
        return; // nothing below the window
    }
    let old = TRACE_SCHEMA_COMPAT_MIN - 1;
    let input = format!("{{\"schema\":\"ftagg-trace\",\"v\":{old}}}\n");
    assert!(Trace::from_jsonl(input.as_bytes()).is_err());
}
