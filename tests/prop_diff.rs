//! Property-based checks of the trace-diff layer (`netsim::diff`) over
//! real protocol executions:
//!
//! 1. `diff(t, t)` is empty for every traced execution — and so is the
//!    diff of two *independent* reruns of the same configuration (the
//!    engine is deterministic, and diffing ignores nothing it shouldn't);
//! 2. moving one crash to a later round yields a first divergence whose
//!    round sits inside `[original, perturbed]`: executions are
//!    bit-identical before the earlier crash round and must part ways by
//!    the later one.

use caaf::Sum;
use ftagg::pair::Tweaks;
use ftagg::tradeoff::{run_tradeoff_traced, TradeoffConfig};
use ftagg::{run_pair_traced, Instance};
use netsim::{adversary::schedules, diff, topology, FailureSchedule, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(seed: u64, c: u32) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match seed % 3 {
        0 => topology::connected_gnp(12 + (seed % 8) as usize, 0.2, &mut rng),
        1 => topology::random_tree(10 + (seed % 8) as usize, &mut rng),
        _ => topology::grid(3, 3 + (seed % 3) as usize),
    };
    let n = g.len();
    let horizon = 60 * u64::from(g.diameter().max(1));
    let mut schedule = FailureSchedule::none();
    for _ in 0..20 {
        let cand = schedules::random_with_edge_budget(&g, NodeId(0), 4, horizon, &mut rng);
        if cand.stretch_factor(&g, NodeId(0)) <= f64::from(c) {
            schedule = cand;
            break;
        }
    }
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
    Instance::new(g, NodeId(0), inputs, schedule, 50).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pair traces: self-diff and rerun-diff are both empty.
    #[test]
    fn pair_self_diff_is_empty(seed in 0u64..100_000) {
        let c = 2;
        let inst = random_instance(seed, c);
        let (_r, t) = run_pair_traced(
            &Sum, &inst, inst.schedule.clone(), c, 2, true, 0, Tweaks::default(),
        );
        let d = diff(&t, &t);
        prop_assert!(d.is_empty(), "self-diff must be empty: {:?}", d.divergence);
        prop_assert_eq!(d.events.0, t.events().len());
        // Determinism, witnessed through the diff: an independent rerun
        // of the same configuration is observationally identical.
        let (_r2, t2) = run_pair_traced(
            &Sum, &inst, inst.schedule.clone(), c, 2, true, 0, Tweaks::default(),
        );
        prop_assert!(diff(&t, &t2).is_empty(), "rerun must diff empty");
    }

    /// Full Algorithm 1 traces: self-diff and rerun-diff are both empty.
    #[test]
    fn tradeoff_self_diff_is_empty(seed in 0u64..100_000) {
        let c = 2;
        let inst = random_instance(seed, c);
        let cfg = TradeoffConfig { b: 42, c, f: 4, seed };
        let (_r, t) = run_tradeoff_traced(&Sum, &inst, &cfg);
        prop_assert!(diff(&t, &t).is_empty());
        let (_r2, t2) = run_tradeoff_traced(&Sum, &inst, &cfg);
        prop_assert!(diff(&t, &t2).is_empty(), "rerun must diff empty");
    }

    /// Moving one crash later by a few rounds: the two traces share every
    /// event before the original round and must diverge by the perturbed
    /// one, so the first divergence lands in `[original, perturbed]`.
    #[test]
    fn crash_perturbation_diverges_at_or_before_the_perturbed_round(seed in 0u64..100_000) {
        let c = 2;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        // A grid stays connected after any single crash, so both
        // schedules are valid instances.
        let g = topology::grid(3, 3 + (seed % 3) as usize);
        let n = g.len();
        let node = NodeId(1 + (seed % (n as u64 - 1)) as u32);
        let r1 = 2 + (seed % 6); // 2..=7: well inside every pair budget
        let r2 = r1 + 1 + (seed % 3); // strictly later: r1+1..=r1+3
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
        let mut s1 = FailureSchedule::none();
        s1.crash(node, r1);
        let mut s2 = FailureSchedule::none();
        s2.crash(node, r2);
        let inst = Instance::new(g, NodeId(0), inputs, s1.clone(), 50).unwrap();
        let (_ra, ta) = run_pair_traced(&Sum, &inst, s1, c, 2, true, 0, Tweaks::default());
        let (_rb, tb) = run_pair_traced(&Sum, &inst, s2, c, 2, true, 0, Tweaks::default());
        let d = diff(&ta, &tb);
        let dv = d.divergence.as_ref().expect("a moved crash must diverge");
        prop_assert!(
            dv.round <= r2,
            "divergence at round {} but the perturbed crash is at {}", dv.round, r2
        );
        prop_assert!(
            dv.round >= r1,
            "divergence at round {} before the original crash at {} — \
             the shared prefix leaked", dv.round, r1
        );
    }
}

/// The acceptance pin: on a fixed grid, moving one clean crash by one
/// round diverges exactly at the original crash round, classified as a
/// crash-schedule change, with the crashed node's CC delta visible.
#[test]
fn pinned_crash_move_is_classified_and_bounded() {
    let g = topology::grid(3, 4);
    let n = g.len();
    let inputs: Vec<u64> = (1..=n as u64).collect();
    let mut s1 = FailureSchedule::none();
    s1.crash(NodeId(5), 4);
    let mut s2 = FailureSchedule::none();
    s2.crash(NodeId(5), 5);
    let inst = Instance::new(g, NodeId(0), inputs.clone(), s1.clone(), n as u64).unwrap();
    let (_ra, ta) = run_pair_traced(&Sum, &inst, s1, 2, 2, true, 0, Tweaks::default());
    let (_rb, tb) = run_pair_traced(&Sum, &inst, s2, 2, 2, true, 0, Tweaks::default());
    let d = diff(&ta, &tb);
    let dv = d.divergence.expect("moved crash diverges");
    assert!((4..=5).contains(&dv.round), "round {}", dv.round);
    // At the divergence the left trace is missing node 5's round-4
    // activity (it is already dead) or shows the crash itself — either
    // way the classifier must blame the schedule or the traffic it
    // suppressed, never topology/length.
    assert!(
        matches!(
            dv.class,
            netsim::DivergenceClass::CrashSchedule | netsim::DivergenceClass::ProtocolMessage
        ),
        "class {:?}",
        dv.class
    );
    // One extra live round for node 5 means its CC can only grow.
    let n5 = d.node_deltas.iter().find(|delta| delta.label == "n5");
    if let Some(delta) = n5 {
        assert!(delta.signed() > 0, "crashing later cannot shrink n5's CC: {delta:?}");
    }
}
