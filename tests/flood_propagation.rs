//! The flooding primitive's timing contract, which every phase budget in
//! the paper leans on: a message flooded by a live source reaches every
//! node that stays connected to it within (residual-diameter) rounds —
//! i.e. within `c·d` under the model's stretch assumption.

use netsim::{topology, Engine, FailureSchedule, FloodState, Message, NodeId, NodeLogic, RoundCtx};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Mark;

impl Message for Mark {
    fn bit_len(&self) -> u64 {
        1
    }
}

/// Node 0 floods one message in round 1; everyone forwards on first
/// receipt and records when they got it.
struct FloodLogic {
    me: NodeId,
    seen: FloodState<Mark>,
    received_at: Option<u64>,
}

impl NodeLogic<Mark> for FloodLogic {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Mark>) {
        if ctx.round() == 1 && self.me == NodeId(0) {
            self.seen.mark_seen(Mark);
            self.received_at = Some(0);
            ctx.send(Mark);
        }
        if !ctx.inbox().is_empty() && self.seen.first_sighting(Mark) {
            self.received_at = Some(ctx.round());
            ctx.send(Mark);
        }
    }
}

fn check_flood(g: netsim::Graph, schedule: FailureSchedule) {
    let n = g.len();
    let horizon = 4 * n as u64;
    let mut eng = Engine::new(g, schedule, |v| FloodLogic {
        me: v,
        seen: FloodState::new(),
        received_at: None,
    });
    eng.run(horizon);
    // Every node alive & root-connected at the end must have received the
    // flood, no later than the worst residual diameter allows.
    let alive = eng.alive_connected(NodeId(0), horizon);
    let worst_stretch = eng.schedule().stretch_factor(eng.graph(), NodeId(0));
    let bound = (worst_stretch * f64::from(eng.graph().diameter())).ceil() as u64 + 1;
    for v in alive {
        let at = eng
            .node(v)
            .received_at
            .unwrap_or_else(|| panic!("live node {v} never received the flood"));
        assert!(
            at <= bound,
            "node {v} received at round {at} > bound {bound} (stretch {worst_stretch:.2})"
        );
    }
}

#[test]
fn flood_reaches_all_live_nodes_within_stretch_bound() {
    let mut rng = StdRng::seed_from_u64(7);
    for fam in topology::Family::ALL {
        for trial in 0..5 {
            let g = fam.build(24, &mut rng);
            let horizon = 4 * g.len() as u64;
            let k = rng.gen_range(0..4);
            let s = netsim::adversary::schedules::random(&g, NodeId(0), k, horizon, &mut rng);
            check_flood(g, s);
            let _ = trial;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn flood_contract_on_random_graphs(seed in 0u64..100_000, n in 4usize..30, k in 0usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology::connected_gnp(n, 0.2, &mut rng);
        let horizon = 4 * n as u64;
        let s = netsim::adversary::schedules::random(&g, NodeId(0), k, horizon, &mut rng);
        check_flood(g, s);
    }
}
