//! E5 — Theorems 3 and 6: AGG and VERI stay within their explicit round
//! and bit budgets on every topology family, with and without failures.
//!
//! - AGG: ≤ `7cd + 4` rounds (≤ 11c flooding rounds) and
//!   ≤ `(11t + 14)(log N + 5)` bits per node;
//! - VERI: ≤ `5cd + 3` rounds (≤ 8c flooding rounds) and
//!   ≤ `(5t + 7)(3·log N + 10)` bits per node.

use caaf::Sum;
use ftagg::msg::{agg_bit_budget, veri_bit_budget};
use ftagg::run::run_pair_engine;
use ftagg::Instance;
use netsim::{adversary::schedules, topology, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

fn check_budgets(inst: &Instance, t: u32, label: &str) {
    let n = inst.n();
    let (eng, params) = run_pair_engine(&Sum, inst, inst.schedule.clone(), C, t, true);
    // Round budgets are structural (the state machines are phase-driven).
    assert_eq!(params.agg_rounds(), 7 * params.model.cd() + 4);
    assert_eq!(params.veri_rounds(), 5 * params.model.cd() + 3);
    assert!(params.model.to_flooding_rounds(params.agg_rounds()) <= 11 * u64::from(C) + 1);
    assert!(params.model.to_flooding_rounds(params.veri_rounds()) <= 8 * u64::from(C) + 1);
    // Bit budgets per node.
    let ab = agg_bit_budget(n, t);
    let vb = veri_bit_budget(n, t);
    for v in inst.graph.nodes() {
        let node = eng.node(v);
        assert!(
            node.agg_bits_sent() <= ab,
            "{label}: node {v} AGG bits {} > budget {ab} (t = {t})",
            node.agg_bits_sent()
        );
        assert!(
            node.veri_bits_sent() <= vb,
            "{label}: node {v} VERI bits {} > budget {vb} (t = {t})",
            node.veri_bits_sent()
        );
    }
}

#[test]
fn budgets_hold_failure_free_across_families() {
    let mut rng = StdRng::seed_from_u64(77);
    for fam in topology::Family::ALL {
        let g = fam.build(24, &mut rng);
        let n = g.len();
        for t in [0u32, 1, 3, 6] {
            let inst = Instance::new(
                g.clone(),
                NodeId(0),
                (0..n as u64).collect(),
                netsim::FailureSchedule::none(),
                n as u64,
            )
            .unwrap();
            check_budgets(&inst, t, &format!("{fam}"));
        }
    }
}

#[test]
fn budgets_hold_under_failures() {
    let mut rng = StdRng::seed_from_u64(78);
    for trial in 0..30 {
        let g = topology::connected_gnp(24, 0.12, &mut rng);
        let horizon = 13 * u64::from(C) * u64::from(g.diameter()) + 10;
        let k = rng.gen_range(0..6);
        let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
        if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
            continue;
        }
        let inputs: Vec<u64> = (0..24).map(|_| rng.gen_range(0..100)).collect();
        let t = rng.gen_range(0..8);
        let inst = Instance::new(g, NodeId(0), inputs, s, 99).unwrap();
        check_budgets(&inst, t, &format!("trial {trial}"));
    }
}

#[test]
fn abort_mechanism_caps_bits_even_under_mass_failure() {
    // Kill a third of a big caterpillar mid-protocol with a tiny t: AGG
    // may abort, but no node may ever exceed its AGG budget.
    let mut rng = StdRng::seed_from_u64(79);
    let g = topology::caterpillar(12, 2);
    let n = g.len();
    let cd = u64::from(C) * u64::from(g.diameter());
    let mut s = netsim::FailureSchedule::none();
    for v in 1..=n as u32 / 3 {
        s.crash(NodeId(v * 2), 2 * cd + rng.gen_range(1..4 * cd));
    }
    let inst = Instance::new(g, NodeId(0), vec![1; n], s, 1).unwrap();
    check_budgets(&inst, 1, "mass failure");
}

#[test]
fn cc_grows_linearly_in_t() {
    // Theorem 3's O((t+1)·logN) shape: on a deep caterpillar, doubling t
    // (roughly) doubles the tree-construction cost (2t-entry ancestor
    // lists dominate).
    let g = topology::caterpillar(16, 1);
    let n = g.len();
    let inst = Instance::new(g, NodeId(0), vec![1; n], netsim::FailureSchedule::none(), 1).unwrap();
    let mut costs = Vec::new();
    for t in [1u32, 2, 4, 8] {
        let (eng, _) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), C, t, true);
        let max = inst.graph.nodes().map(|v| eng.node(v).agg_bits_sent()).max().unwrap();
        costs.push((t, max));
    }
    for w in costs.windows(2) {
        let (t0, c0) = w[0];
        let (t1, c1) = w[1];
        assert!(c1 >= c0, "cost must not drop as t grows: {costs:?}");
        // Sub-linear headroom check: cost(2t) ≤ 2.5 × cost(t) + overhead.
        assert!(c1 <= c0 * 5 / 2 + 200, "t {t0} -> {t1}: cost jumped {c0} -> {c1}");
    }
}
