//! Property-based checks of the sampled-telemetry layer: a
//! [`SamplingSink`] meters the full event stream exactly and forwards
//! precisely the deterministic 1-in-k node subset it advertises, its
//! scaled-up estimates converge onto the exact totals within the stated
//! error bars, and a [`FlightRecorder`]'s delta-encoded ring decodes
//! back byte-for-byte into the JSONL a [`JsonlSink`] wrote for the same
//! run — evicting exactly the rounds older than its retention window.

use std::any::Any;

use netsim::{
    topology, Engine, Event, FailureSchedule, FlightRecorder, Graph, JsonlSink, Message, NodeId,
    NodeLogic, Received, Round, RoundCtx, SamplingSink, TeeSink, Trace,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Debug, PartialEq, Eq)]
struct Ping {
    from: NodeId,
    bits: u64,
}

impl Message for Ping {
    fn bit_len(&self) -> u64 {
        self.bits
    }
}

/// Deterministic per-(node, round) traffic: whether to send, and how big.
fn traffic(seed: u64, v: NodeId, r: Round) -> Option<u64> {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(v.0).wrapping_mul(0x517c_c1b7_2722_0a95))
        .wrapping_add(r.wrapping_mul(0x2545_f491_4f6c_dd1d));
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 32;
    (x % 3 != 0).then_some(8 + x % 57)
}

struct Chatter {
    me: NodeId,
    seed: u64,
}

impl NodeLogic<Ping> for Chatter {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
        let r = ctx.round();
        for m in ctx.inbox() {
            let Received { from, msg, .. } = m;
            debug_assert!(msg.bits > 0, "from {from}");
        }
        if let Some(bits) = traffic(self.seed, self.me, r) {
            ctx.send(Ping { from: self.me, bits });
        }
    }
}

fn random_setup(seed: u64, n: usize, crashes: usize, horizon: Round) -> (Graph, FailureSchedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = if rng.gen_bool(0.5) {
        topology::connected_gnp(n, 0.25, &mut rng)
    } else {
        topology::random_tree(n, &mut rng)
    };
    let mut s = FailureSchedule::none();
    let n = g.len();
    for _ in 0..crashes {
        let v = NodeId(rng.gen_range(1..n as u32));
        let r = rng.gen_range(1..=horizon);
        s.crash(v, r);
    }
    (g, s)
}

/// Runs the chatter network to `horizon` with `sink` installed and hands
/// the sink back.
fn run_with_sink(
    seed: u64,
    n: usize,
    crashes: usize,
    horizon: Round,
    sink: Box<dyn netsim::TraceSink>,
) -> Box<dyn netsim::TraceSink> {
    let (g, s) = random_setup(seed, n, crashes, horizon);
    let mut eng = Engine::new(g, s, |v| Chatter { me: v, seed });
    eng.set_sink(sink);
    eng.run(horizon);
    eng.take_sink().expect("sink was installed")
}

/// The reference event stream of a scenario: a plain full-fidelity trace.
fn reference_trace(seed: u64, n: usize, crashes: usize, horizon: Round) -> Trace {
    let sink = run_with_sink(seed, n, crashes, horizon, Box::new(Trace::new()));
    *(sink as Box<dyn Any>).downcast::<Trace>().unwrap()
}

/// The admission decision the sampler documents for `e` (structural
/// events are always admitted).
fn admitted(e: &Event, seed: u64, k: u64) -> bool {
    match e {
        Event::Send { node, kind, .. } => {
            SamplingSink::admits(seed, k, SamplingSink::send_stratum(kind), *node)
        }
        Event::Deliver { node, .. } => {
            SamplingSink::admits(seed, k, SamplingSink::deliver_stratum(), *node)
        }
        _ => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sampler is exactly the filter it advertises: the inner sink
    /// receives precisely the events whose node passes the documented
    /// admission rule, and every stratum's `total_*` meters agree with
    /// an exhaustive scan of the full stream — so the dropped volume is
    /// known exactly, never estimated.
    #[test]
    fn sampler_forwards_the_advertised_subset_and_meters_the_rest(
        seed in 0u64..1_000_000,
        n in 4usize..24,
        crashes in 0usize..4,
        ki in 0usize..3,
    ) {
        let k = [1u64, 4, 16][ki];
        let horizon: Round = 14;
        let reference = reference_trace(seed, n, crashes, horizon);

        let sink = run_with_sink(
            seed, n, crashes, horizon,
            Box::new(SamplingSink::new(Box::new(Trace::new()), k, seed)),
        );
        let sampler = *(sink as Box<dyn Any>).downcast::<SamplingSink>().unwrap();
        let factors = sampler.factors();
        let inner = *(sampler.into_inner() as Box<dyn Any>).downcast::<Trace>().unwrap();

        let expected: Vec<&Event> =
            reference.events().iter().filter(|e| admitted(e, seed, k)).collect();
        let got: Vec<&Event> = inner.events().iter().collect();
        prop_assert_eq!(got, expected, "inner sink saw a different subset");

        // Per-stratum meters vs an exhaustive scan of the reference.
        for f in &factors {
            let in_stratum = |e: &&Event| match (f.stratum.as_str(), e) {
                ("deliver", Event::Deliver { .. }) => true,
                ("send/-", Event::Send { kind, .. }) => kind.is_empty(),
                (s, Event::Send { kind, .. }) => s == format!("send/{kind}"),
                _ => false,
            };
            let all: Vec<&Event> = reference.events().iter().filter(in_stratum).collect();
            fn bits(e: &Event) -> u64 {
                match e {
                    Event::Send { bits, .. } | Event::Deliver { bits, .. } => *bits,
                    _ => 0,
                }
            }
            prop_assert_eq!(f.total_events, all.len() as u64, "{}", &f.stratum);
            prop_assert_eq!(
                f.total_bits,
                all.iter().map(|e| bits(e)).sum::<u64>(),
                "{}", &f.stratum
            );
            let kept: Vec<&&Event> = all.iter().filter(|e| admitted(e, seed, k)).collect();
            prop_assert_eq!(f.sampled_events, kept.len() as u64, "{}", &f.stratum);
            prop_assert_eq!(
                f.sampled_bits,
                kept.iter().map(|e| bits(e)).sum::<u64>(),
                "{}", &f.stratum
            );
            prop_assert!(f.scale() >= 1.0, "scale of {} below 1", &f.stratum);
            if k == 1 {
                prop_assert_eq!(f.sampled_events, f.total_events, "k=1 must keep everything");
                prop_assert!((f.scale() - 1.0).abs() < 1e-12);
            }
        }
    }

    /// A flight recorder whose ring outlives the run reproduces the
    /// JSONL a [`JsonlSink`] wrote for the same events, byte for byte —
    /// the delta encoding loses nothing.
    #[test]
    fn flight_ring_round_trips_byte_for_byte(
        seed in 0u64..1_000_000,
        n in 4usize..24,
        crashes in 0usize..4,
    ) {
        let horizon: Round = 14;
        let recorder = FlightRecorder::new(horizon as usize + 8);
        let flight = recorder.handle();
        let tee = TeeSink::new()
            .with(Box::new(JsonlSink::new(Vec::<u8>::new())))
            .with(Box::new(recorder));
        let sink = run_with_sink(seed, n, crashes, horizon, Box::new(tee));

        let tee = *(sink as Box<dyn Any>).downcast::<TeeSink>().unwrap();
        let jsonl = *(tee.into_sinks().remove(0) as Box<dyn Any>)
            .downcast::<JsonlSink<Vec<u8>>>()
            .unwrap();
        let written = String::from_utf8(jsonl.finish().unwrap()).unwrap();
        prop_assert_eq!(flight.snapshot_jsonl().unwrap(), written, "ring decode diverged");
    }

    /// A bounded ring retains exactly the last `r` event-bearing rounds:
    /// the decoded dump equals the reference stream restricted to those
    /// rounds, and the stats ledger (buffered/evicted/oldest/newest)
    /// matches the same arithmetic.
    #[test]
    fn flight_ring_evicts_all_but_the_last_r_rounds(
        seed in 0u64..1_000_000,
        n in 4usize..24,
        crashes in 0usize..4,
        r in 1usize..6,
    ) {
        let horizon: Round = 14;
        let reference = reference_trace(seed, n, crashes, horizon);
        let mut rounds: Vec<Round> = reference.events().iter().map(Event::round).collect();
        rounds.dedup(); // event streams are round-monotone
        let retained: Vec<Round> = rounds[rounds.len().saturating_sub(r)..].to_vec();

        let recorder = FlightRecorder::new(r);
        let flight = recorder.handle();
        let _ = run_with_sink(seed, n, crashes, horizon, Box::new(recorder));

        let dumped = Trace::from_jsonl(flight.snapshot_jsonl().unwrap().as_bytes()).unwrap();
        let expected: Vec<&Event> = reference
            .events()
            .iter()
            .filter(|e| retained.contains(&e.round()))
            .collect();
        let got: Vec<&Event> = dumped.events().iter().collect();
        prop_assert_eq!(got, expected, "ring kept the wrong window");

        let stats = flight.stats();
        prop_assert_eq!(stats.rounds_buffered, retained.len() as u64);
        prop_assert_eq!(stats.evicted_rounds, (rounds.len() - retained.len()) as u64);
        prop_assert_eq!(stats.events_buffered, expected.len() as u64);
        prop_assert_eq!(stats.recorded_events, reference.events().len() as u64);
        prop_assert_eq!(stats.total_events, reference.events().len() as u64);
        if let (Some(first), Some(last)) = (retained.first(), retained.last()) {
            prop_assert_eq!(stats.oldest_round, *first);
            prop_assert_eq!(stats.newest_round, *last);
        }
    }
}

/// The estimator converges: scaling each stratum's sampled bits by the
/// unbiased factor lands within ~3 standard errors of the exact total
/// at every supported rate. Deterministic seeds; large enough networks
/// that k = 16 still admits a few nodes per stratum.
#[test]
fn scaled_estimates_converge_at_all_rates() {
    for seed in 0..6u64 {
        let horizon: Round = 16;
        let n = 48 + (seed % 16) as usize;
        for k in [1u64, 4, 16] {
            let sink = run_with_sink(
                seed,
                n,
                (seed % 3) as usize,
                horizon,
                Box::new(SamplingSink::new(Box::new(TeeSink::new()), k, seed)),
            );
            let sampler = *(sink as Box<dyn Any>).downcast::<SamplingSink>().unwrap();
            for f in sampler.factors() {
                let est = f.sampled_bits as f64 * f.scale();
                let exact = f.total_bits as f64;
                let band = 3.0 * f.rel_error() * exact + 1.0;
                assert!(
                    (est - exact).abs() <= band,
                    "stratum {} at k={k} seed {seed}: est {est} vs exact {exact} (band {band})",
                    f.stratum
                );
                if k == 1 {
                    assert_eq!(f.sampled_bits, f.total_bits, "k=1 must be exact");
                }
            }
        }
    }
}
