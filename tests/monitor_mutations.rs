//! Mutation tests for the invariant watchdog: deliberately broken
//! executions must trip exactly the violation class they break.
//!
//! The over-budget sender runs through the real engine (a node that
//! floods far past its `BudgetRule` allowance). The other mutations —
//! post-crash sends, phantom deliveries, unbalanced phases — cannot be
//! produced by the engine at all (it enforces them structurally), so they
//! are injected as synthetic event streams straight into the sink, the
//! same way a corrupted trace replay would present them.

use netsim::{
    topology, Engine, Event, FailureSchedule, Message, MonitorConfig, NodeId, NodeLogic, RoundCtx,
    TraceSink, ViolationKind, Watchdog,
};

#[derive(Clone, Debug)]
struct Blob;

impl Message for Blob {
    fn bit_len(&self) -> u64 {
        32
    }
}

/// A broken protocol: broadcasts 32 bits every single round, ignoring any
/// budget it was supposed to respect.
struct Chatterbox;

impl NodeLogic<Blob> for Chatterbox {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Blob>) {
        ctx.send(Blob);
    }
}

fn kinds(report: &netsim::MonitorReport) -> Vec<&'static str> {
    report
        .violations
        .iter()
        .map(|v| match v.kind {
            ViolationKind::BudgetExceeded { .. } => "budget",
            ViolationKind::PostCrashActivity { .. } => "post-crash",
            ViolationKind::UnmatchedDelivery { .. } => "unmatched-delivery",
            ViolationKind::RoundOrder { .. } => "round-order",
            ViolationKind::PhaseUnderflow { .. } => "phase-underflow",
            ViolationKind::PhaseMismatch { .. } => "phase-mismatch",
            ViolationKind::PhaseLeftOpen { .. } => "phase-left-open",
            ViolationKind::UnattributedBits { .. } => "unattributed-bits",
            ViolationKind::DecideRejected { .. } => "decide-rejected",
        })
        .collect()
}

/// Runs a synthetic event stream through a fresh watchdog.
fn watch(cfg: MonitorConfig, events: &[Event]) -> netsim::MonitorReport {
    let mut dog = Watchdog::new(cfg);
    for e in events {
        dog.record(e);
    }
    dog.finish()
}

#[test]
fn over_budget_sender_trips_budget_violation_through_the_engine() {
    // 3-node path, everyone floods 32 bits per round for 6 rounds = 192
    // bits per node, against a 100-bit allowance.
    let mut eng = Engine::new(topology::path(3), FailureSchedule::none(), |_| Chatterbox);
    eng.set_sink(Box::new(Watchdog::new(MonitorConfig::new(3).budget(
        "tiny (mutation)",
        1..=6,
        100,
    ))));
    eng.run(6);
    let mut sink = eng.take_sink().unwrap();
    let report = sink.as_any_mut().downcast_mut::<Watchdog>().unwrap().finish();
    assert!(!report.is_clean());
    assert!(kinds(&report).contains(&"budget"), "{}", report.render());
    // Flagged once per node per rule, not once per extra send.
    assert_eq!(report.violations.len(), 3, "{}", report.render());
    let netsim::ViolationKind::BudgetExceeded { budget, actual, .. } = &report.violations[0].kind
    else {
        panic!("expected a budget violation");
    };
    assert_eq!(*budget, 100);
    assert!(*actual > 100);
}

#[test]
fn post_crash_send_and_delivery_trip_crash_silence() {
    // Crash silence is attributed to the offending node's own events (the
    // root cause): the dead node's send and its claimed delivery both
    // flag, while the sender side of deliveries is covered by causality.
    let report = watch(
        MonitorConfig::new(3),
        &[
            Event::send(1, NodeId(1), 8, 1),
            Event::Crash { round: 2, node: NodeId(1) },
            Event::send(3, NodeId(1), 8, 1),
            Event::deliver(4, NodeId(1), NodeId(0), 8),
        ],
    );
    let ks = kinds(&report);
    assert_eq!(ks.iter().filter(|k| **k == "post-crash").count(), 2, "{}", report.render());
    // The phantom delivery (node 0 never sent in round 3) also breaks
    // causality.
    assert!(ks.contains(&"unmatched-delivery"), "{}", report.render());
}

#[test]
fn phantom_delivery_trips_causality() {
    // Nothing was sent in round 1, yet node 0 claims a delivery in round 2;
    // and node 2's round-3 delivery claims more bits than were broadcast.
    let report = watch(
        MonitorConfig::new(3),
        &[
            Event::deliver(2, NodeId(0), NodeId(1), 8),
            Event::send(2, NodeId(0), 4, 1),
            Event::deliver(3, NodeId(2), NodeId(0), 16),
        ],
    );
    let ks = kinds(&report);
    assert_eq!(ks.iter().filter(|k| **k == "unmatched-delivery").count(), 2, "{}", report.render());
}

#[test]
fn unbalanced_phases_trip_phase_discipline() {
    // Exit without an enter.
    let underflow =
        watch(MonitorConfig::new(2), &[Event::PhaseExit { round: 1, label: "AGG".into() }]);
    assert_eq!(kinds(&underflow), vec!["phase-underflow"], "{}", underflow.render());

    // Mismatched label.
    let mismatch = watch(
        MonitorConfig::new(2),
        &[
            Event::PhaseEnter { round: 1, label: "AGG".into() },
            Event::PhaseExit { round: 2, label: "VERI".into() },
        ],
    );
    assert!(kinds(&mismatch).contains(&"phase-mismatch"), "{}", mismatch.render());

    // Never closed.
    let open = watch(MonitorConfig::new(2), &[Event::PhaseEnter { round: 1, label: "AGG".into() }]);
    assert_eq!(kinds(&open), vec!["phase-left-open"], "{}", open.render());

    // Bits outside every phase once phases are in use break the
    // partition-of-cost property.
    let stray = watch(
        MonitorConfig::new(2),
        &[
            Event::PhaseEnter { round: 1, label: "AGG".into() },
            Event::PhaseExit { round: 2, label: "AGG".into() },
            Event::send(3, NodeId(0), 8, 1),
        ],
    );
    assert!(kinds(&stray).contains(&"unattributed-bits"), "{}", stray.render());
}

#[test]
fn rejected_decision_trips_the_envelope_check() {
    let cfg = MonitorConfig::new(2).decide_check(Box::new(|_, _, value| {
        if value == 42 {
            Ok(())
        } else {
            Err(format!("{value} is not the answer"))
        }
    }));
    let report = watch(
        cfg,
        &[
            Event::Decide { round: 5, node: NodeId(0), value: 42 },
            Event::Decide { round: 5, node: NodeId(0), value: 7 },
        ],
    );
    assert_eq!(kinds(&report), vec!["decide-rejected"], "{}", report.render());
    assert_eq!(report.decides, 2);
}

#[test]
#[should_panic(expected = "watchdog (strict)")]
fn strict_mode_panics_on_the_first_violation() {
    let mut dog = Watchdog::new(MonitorConfig::new(2).strict());
    dog.record(&Event::PhaseExit { round: 1, label: "AGG".into() });
}
