//! Property-based checks of the adversary-mining layer:
//!
//! 1. every schedule produced by `adversary::mutate::schedule` respects
//!    the `f` edge-failure budget and the `c·d` stretch constraint and
//!    never crashes the root — whatever the bias, base, or RNG state;
//! 2. topology mutations keep the graph connected and keep the schedule
//!    valid and within budget on the *mutated* graph;
//! 3. the hill-climbing miner's recorded history is strictly improving
//!    (each accepted step is a new best), starting from the initial
//!    evaluation at iteration 0;
//! 4. a mined corpus entry round-trips through its text format and
//!    replays to the recorded objective value bit for bit.

use caaf::Sum;
use ftagg_bench::search::{
    corpus_entry, mine, replay_entry, Acceptance, MineConfig, MineProtocol, Objective,
};
use ftagg_bench::Env;
use netsim::adversary::{mutate, schedules};
use netsim::{topology, CorpusEntry, FailureSchedule, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const C: u32 = 2;

fn random_setup(seed: u64) -> (netsim::Graph, FailureSchedule, u64, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match seed % 3 {
        0 => topology::connected_gnp(10 + (seed % 8) as usize, 0.25, &mut rng),
        1 => topology::caterpillar(6 + (seed % 6) as usize, 1),
        _ => topology::grid(3, 3 + (seed % 3) as usize),
    };
    let horizon = 42 * u64::from(g.diameter().max(1));
    let f_budget = 2 + (seed % 5) as usize;
    // A base that already satisfies the constraints (mutate falls back to
    // the base when no attempt sticks, so it must start inside them).
    let mut base = FailureSchedule::none();
    for _ in 0..50 {
        let cand = schedules::random_with_edge_budget(&g, NodeId(0), f_budget, horizon, &mut rng);
        if cand.stretch_factor(&g, NodeId(0)) <= f64::from(C) {
            base = cand;
            break;
        }
    }
    (g, base, horizon, f_budget)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chains of schedule mutations never escape the `f` budget, the
    /// `c·d` stretch constraint, or model validity.
    #[test]
    fn mutated_schedules_respect_f_budget_and_stretch(seed in 0u64..100_000) {
        let (g, base, horizon, f_budget) = random_setup(seed);
        let root = NodeId(0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let mut bias = mutate::MutationBias::default();
        let mut cur = base;
        for step in 0..12 {
            // Alternate between uniform and hot-spot-biased mutations.
            if step == 6 {
                bias.nodes = g.nodes().filter(|&v| v != root).take(3).collect();
                bias.rounds = vec![1, horizon / 2, horizon];
            }
            cur = mutate::schedule(&cur, &g, root, f_budget, horizon, C, &bias, &mut rng);
            prop_assert!(
                cur.edge_failures(&g) <= f_budget,
                "step {step}: {} edge failures exceed budget {f_budget}",
                cur.edge_failures(&g),
            );
            prop_assert!(
                cur.stretch_factor(&g, root) <= f64::from(C),
                "step {step}: stretch {} exceeds c = {C}",
                cur.stretch_factor(&g, root),
            );
            prop_assert!(cur.validate(&g, root).is_ok());
            prop_assert!(!cur.ever_crashes(root), "root crashed at step {step}");
            for (_, e) in cur.iter() {
                prop_assert!(e.round >= 1 && e.round <= horizon, "round {} off horizon", e.round);
            }
        }
    }

    /// Topology mutations stay connected and keep the schedule valid and
    /// within budget on the mutated graph.
    #[test]
    fn mutated_topologies_stay_connected_and_in_budget(seed in 0u64..100_000) {
        let (g, schedule, _horizon, f_budget) = random_setup(seed);
        let root = NodeId(0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut cur = g;
        for step in 0..8 {
            let Some(next) = mutate::topology(&cur, root, &schedule, f_budget, C, &mut rng) else {
                continue;
            };
            prop_assert!(next.is_connected(), "disconnected at step {step}");
            prop_assert_eq!(next.len(), cur.len(), "node count must not change");
            prop_assert!(schedule.edge_failures(&next) <= f_budget);
            prop_assert!(schedule.stretch_factor(&next, root) <= f64::from(C));
            prop_assert!(schedule.validate(&next, root).is_ok());
            let delta = next.edge_count() as i64 - cur.edge_count() as i64;
            prop_assert!(delta.abs() == 1, "one edge added or removed, got delta {delta}");
            cur = next;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Hill climbing only ever records improvements: the history starts
    /// with the initial evaluation and is strictly increasing, and the
    /// final value equals the last history entry.
    #[test]
    fn hill_climb_history_is_strictly_improving(seed in 0u64..10_000) {
        let env = Env::caterpillar(seed, 6, 3, 42, C);
        let cfg = MineConfig {
            iterations: 10,
            coin_seeds: 2,
            seed,
            threads: 1,
            b: 42,
            c: C,
            f_budget: 3,
            objective: Objective::BottleneckCc,
            protocol: MineProtocol::Tradeoff { f: 3 },
            acceptance: Acceptance::HillClimb,
            mutate_topology: false,
        };
        let r = mine(&Sum, &env.graph, &env.inputs, env.max_input, &cfg, Some(&env.schedule), None);
        prop_assert!(!r.history.is_empty());
        prop_assert_eq!(r.history[0].iteration, 0, "history starts at the initial evaluation");
        for w in r.history.windows(2) {
            prop_assert!(
                w[1].value > w[0].value,
                "accepted step did not improve: {} -> {}", w[0].value, w[1].value,
            );
            prop_assert!(w[1].iteration > w[0].iteration);
        }
        prop_assert_eq!(r.value, r.history.last().unwrap().value);
        prop_assert_eq!(r.evaluations, cfg.iterations + 1);
    }

    /// Corpus round-trip: serialize, reparse, replay — the reparsed entry
    /// is structurally identical and replays to the recorded value bit
    /// for bit under the strict watchdog.
    #[test]
    fn corpus_round_trip_replays_bit_for_bit(seed in 0u64..10_000) {
        let env = Env::caterpillar(seed, 5, 2, 42, C);
        let cfg = MineConfig {
            iterations: 6,
            coin_seeds: 2,
            seed,
            threads: 1,
            b: 42,
            c: C,
            f_budget: 2,
            objective: Objective::RootCc,
            protocol: MineProtocol::Tradeoff { f: 2 },
            acceptance: Acceptance::HillClimb,
            mutate_topology: false,
        };
        let r = mine(&Sum, &env.graph, &env.inputs, env.max_input, &cfg, Some(&env.schedule), None);
        let entry = corpus_entry("prop-rt", &Sum, &env.inputs, env.max_input, &cfg, &r);
        let text = entry.to_text();
        let parsed = CorpusEntry::from_text(&text).expect("round trip parses");
        prop_assert_eq!(parsed.to_text(), text, "serialization is a fixed point");
        prop_assert_eq!(&parsed.value, &entry.value);
        prop_assert_eq!(parsed.graph.edges(), entry.graph.edges());
        let replay = replay_entry(&parsed, true).expect("replay runs");
        prop_assert_eq!(replay.value, entry.value, "replayed CC drifted");
        prop_assert!(replay.clean, "strict watchdog flagged the replay");
        prop_assert_eq!(replay.counterexamples, 0usize);
    }
}
