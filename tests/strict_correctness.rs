//! Footnote 6's *strict* correctness: the paper notes all results hold
//! under the stronger definition "the result equals `◇_{o∈s} o` for some
//! `s1 ⊆ s ⊆ s2`" — not merely a value in the interval. For SUM this is a
//! subset-sum condition and is a much sharper net for double-counting
//! bugs: adding a blocked partial sum twice can easily stay inside the
//! interval but will rarely hit an achievable subset sum.
//!
//! The representative-set machinery (§4.3) is exactly what guarantees it:
//! every input is counted at most once, live inputs exactly once.

use caaf::oracle::achievable_results;
use caaf::Sum;
use ftagg::pair::AggOutcome;
use ftagg::run::run_pair_engine;
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{adversary::schedules, topology, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

/// Splits inputs into (mandatory, optional) at `end_round` and checks the
/// strict subset-sum condition.
fn strictly_correct(inst: &Instance, result: u64, end_round: u64) -> bool {
    let dead = inst.schedule.dead_by(end_round);
    let alive: std::collections::HashSet<NodeId> =
        inst.graph.reachable_from(inst.root, &dead).into_iter().collect();
    let mut mandatory = Vec::new();
    let mut optional = Vec::new();
    for v in inst.graph.nodes() {
        if alive.contains(&v) {
            mandatory.push(inst.inputs[v.index()]);
        } else {
            optional.push(inst.inputs[v.index()]);
        }
    }
    assert!(optional.len() <= 20, "keep enumeration tractable");
    achievable_results(&Sum, &mandatory, &optional).contains(&result)
}

/// Powers-of-two inputs make subset sums unique: any double count or
/// half-count lands outside the achievable set with certainty.
fn pow2_inputs(n: usize) -> Vec<u64> {
    (0..n).map(|i| 1u64 << (i % 16)).collect()
}

#[test]
fn pair_results_are_strictly_correct() {
    let mut rng = StdRng::seed_from_u64(61);
    let mut checked = 0;
    for trial in 0..60u64 {
        let g = match trial % 3 {
            0 => topology::cycle(14),
            1 => topology::connected_gnp(16, 0.2, &mut rng),
            _ => topology::caterpillar(6, 1),
        };
        let n = g.len();
        let horizon = 26 * u64::from(g.diameter()) + 10;
        let k = rng.gen_range(0..4);
        let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
        if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
            continue;
        }
        let inst = Instance::new(g, NodeId(0), pow2_inputs(n), s, 1 << 15).unwrap();
        let t = rng.gen_range(0..5);
        let (eng, params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), C, t, true);
        let root = eng.node(inst.root);
        // Per Theorem 5 the strict guarantee only binds when there is no
        // LFC; the acceptance condition (no abort + VERI true) implies it.
        if let AggOutcome::Result(v) = root.agg_outcome() {
            if root.veri_verdict() {
                assert!(
                    strictly_correct(&inst, v, params.total_rounds()),
                    "trial {trial}: accepted result {v} is not an achievable subset sum"
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 30, "want coverage, got {checked}");
}

#[test]
fn tradeoff_results_are_strictly_correct() {
    let mut rng = StdRng::seed_from_u64(62);
    let mut checked = 0;
    for trial in 0..40u64 {
        let g = topology::connected_gnp(18, 0.18, &mut rng);
        let n = g.len();
        let horizon = 63 * u64::from(g.diameter());
        let k = rng.gen_range(0..4);
        let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
        if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
            continue;
        }
        let inst = Instance::new(g, NodeId(0), pow2_inputs(n), s, 1 << 15).unwrap();
        let cfg = TradeoffConfig { b: 63, c: C, f: inst.edge_failures().max(1), seed: trial };
        let r = run_tradeoff(&Sum, &inst, &cfg);
        assert!(
            strictly_correct(&inst, r.result, r.rounds),
            "trial {trial}: Algorithm 1 result {} is not an achievable subset sum",
            r.result
        );
        checked += 1;
    }
    assert!(checked >= 25, "want coverage, got {checked}");
}
