//! The bit-budget enforcement paths: AGG's abort symbol and VERI's
//! overflow symbol. Under mass failure with a tiny `t`, flood traffic
//! exceeds the per-node budgets `(11t+14)(logN+5)` / `(5t+7)(3logN+10)`;
//! the protocols must then degrade *safely* — abort / output false —
//! while every node's metered bits stay within budget.

use caaf::Sum;
use ftagg::msg::{agg_bit_budget, veri_bit_budget};
use ftagg::pair::AggOutcome;
use ftagg::run::run_pair_engine;
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{topology, FailureSchedule, NodeId};

const C: u32 = 2;

/// Torus with 8 scattered nodes dying around phase offset `round_off·cd`:
/// the graph stays connected (stretch ≈ 1.2), so every failure's recovery
/// floods reach every node — maximum traffic against a t = 0 budget.
fn mass_failure_instance(round_off: u64) -> Instance {
    let g = topology::torus(4, 8);
    let n = g.len();
    let cd = u64::from(C) * u64::from(g.diameter());
    let mut s = FailureSchedule::none();
    for &v in &[3u32, 6, 10, 13, 17, 20, 26, 29] {
        s.crash(NodeId(v), round_off * cd + 2 + u64::from(v) % 3);
    }
    Instance::new(g, NodeId(0), vec![1; n], s, 1).unwrap()
}

#[test]
fn agg_aborts_but_never_exceeds_budget() {
    // Deaths right after tree construction (round offset 2 ≈ start of
    // aggregation): a storm of critical-failure and speculative floods
    // against a t = 0 budget.
    let inst = mass_failure_instance(2);
    let t = 0;
    let (eng, _params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), C, t, true);
    let root = eng.node(inst.root);
    assert_eq!(
        root.agg_outcome(),
        AggOutcome::Aborted,
        "mass failure with t = 0 must trip the abort budget"
    );
    let budget = agg_bit_budget(inst.n(), t);
    for v in inst.graph.nodes() {
        assert!(
            eng.node(v).agg_bits_sent() <= budget,
            "node {v}: {} > {budget}",
            eng.node(v).agg_bits_sent()
        );
    }
}

#[test]
fn veri_overflow_forces_false_within_budget() {
    // Deaths during the speculative-flooding phase (offset 5): AGG's tree
    // already aggregated cleanly, so AGG stays under budget, but VERI
    // faces a storm of failed-parent/failed-child floods at t = 0.
    let inst = mass_failure_instance(5);
    let t = 0;
    let (eng, _params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), C, t, true);
    let root = eng.node(inst.root);
    // With t = 0 there are no witnesses, so any failed-parent claim that
    // reaches the root (or an overflow) forces false — the one-sided rule.
    assert!(!root.veri_verdict(), "VERI must output false (overflow or detected failures)");
    assert!(
        !root.failed_parents_seen().is_empty(),
        "the failed-parent claims must have reached the root"
    );
    let budget = veri_bit_budget(inst.n(), t);
    for v in inst.graph.nodes() {
        assert!(
            eng.node(v).veri_bits_sent() <= budget,
            "node {v}: {} > {budget}",
            eng.node(v).veri_bits_sent()
        );
    }
}

#[test]
fn tradeoff_runs_multiple_pairs_when_intervals_fail() {
    // Seed-pinned: with seed 11, b = 84, c = 2 the first selected interval
    // is known; concentrating failures there forces Algorithm 1 to move on
    // to a later pair (exercising the multi-interval accounting). This is
    // a code-path test, not an adversary-power claim (the schedule is
    // chosen knowing the coins, which the oblivious model forbids).
    let g = topology::cycle(14);
    let d = u64::from(g.diameter());
    let n = g.len();
    let b = 84u64;
    let cfg = TradeoffConfig { b, c: C, f: 6, seed: 11 };
    // Crash a 2-chain in EVERY interval start (oblivious-compatible
    // spreading over the first two intervals' tree-construction windows).
    let mut s = FailureSchedule::none();
    let cd = u64::from(C) * d;
    let interval = 19 * u64::from(C) * d;
    s.crash(NodeId(1), 2 * cd + 2);
    s.crash(NodeId(2), 2 * cd + 3);
    s.crash(NodeId(4), interval + 2 * cd + 2);
    s.crash(NodeId(5), interval + 2 * cd + 3);
    let inst = Instance::new(g, NodeId(0), vec![2; n], s, 2).unwrap();
    if inst.schedule.stretch_factor(&inst.graph, inst.root) > f64::from(C) {
        return; // construction must respect the model; bail if not
    }
    let r = run_tradeoff(&Sum, &inst, &cfg);
    assert!(r.correct, "result {} incorrect", r.result);
    // Whatever path it took, the metrics of all pairs merge and the TC
    // budget holds.
    assert!(r.flooding_rounds <= b + 1);
    if r.pairs_run >= 2 {
        // The multi-pair path merged metrics from both executions.
        assert!(r.metrics.max_bits() > 0);
    }
}
