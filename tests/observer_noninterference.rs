//! The observability layer's one inviolable contract: observing an
//! execution may never perturb it. For a grid of seeded scenarios each
//! execution is run three ways — tracing off, with the in-memory
//! [`Trace`] sink, and with the streaming [`JsonlSink`] — and everything
//! observable without a sink (delivered messages, node activations,
//! [`PairReport`] outcomes, every [`Metrics`] counter) must be
//! byte-identical across the three.

use std::any::Any;
use std::sync::Arc;

use caaf::Sum;
use ftagg::{run_pair, run_pair_with_sink, Instance, PairReport};
use netsim::{
    adversary::schedules, round_observer, topology, Engine, FailureSchedule, FlightRecorder, Graph,
    JsonlSink, Message, Metrics, NodeId, NodeLogic, PhaseStats, Received, Round, RoundCtx,
    SamplingSink, SoaEngine, SpanKind, TeeSink, TelemetryHub, Timeline, Trace, TraceSink,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything a [`Metrics`] exposes, collected into one comparable value.
#[derive(Debug, PartialEq, Eq)]
struct MetricsFingerprint {
    bits_per_node: Vec<u64>,
    per_round: Vec<(Round, u64)>,
    max_bits: u64,
    total_bits: u64,
    bottleneck: Option<NodeId>,
    last_send_round: Option<Round>,
    phases: Vec<PhaseStats>,
}

fn fingerprint(m: &Metrics) -> MetricsFingerprint {
    MetricsFingerprint {
        bits_per_node: m.bits_per_node().to_vec(),
        per_round: m.per_round_bits().collect(),
        max_bits: m.max_bits(),
        total_bits: m.total_bits(),
        bottleneck: m.bottleneck(),
        last_send_round: m.last_send_round(),
        phases: m.phases(),
    }
}

// ---------------------------------------------------------------------
// Part 1: raw engine with probe nodes that record their own deliveries.
// The probes observe the execution from the inside, so "delivered
// messages are identical" is checked without relying on any sink.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
struct Ping {
    from: NodeId,
    sent_round: Round,
}

impl Message for Ping {
    fn bit_len(&self) -> u64 {
        32
    }
}

/// Deterministic per-(node, round) send decision (cheap mix).
fn sends_in(seed: u64, v: NodeId, r: Round) -> bool {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(v.0).wrapping_mul(0x517c_c1b7_2722_0a95))
        .wrapping_add(r.wrapping_mul(0x2545_f491_4f6c_dd1d));
    x ^= x >> 31;
    x % 2 == 0
}

struct Probe {
    me: NodeId,
    seed: u64,
    active_rounds: Vec<Round>,
    received: Vec<(NodeId, Round, Round)>,
}

impl NodeLogic<Ping> for Probe {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
        let r = ctx.round();
        self.active_rounds.push(r);
        for m in ctx.inbox() {
            let Received { from, msg } = m;
            self.received.push((from, msg.sent_round, r));
        }
        if sends_in(self.seed, self.me, r) {
            ctx.send(Ping { from: self.me, sent_round: r });
        }
    }
}

fn probe_setup(seed: u64) -> (Graph, FailureSchedule, Round) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 6 + (seed % 10) as usize;
    let g = if seed.is_multiple_of(2) {
        topology::connected_gnp(n, 0.3, &mut rng)
    } else {
        topology::random_tree(n, &mut rng)
    };
    let horizon = 12;
    let mut s = FailureSchedule::none();
    for _ in 0..(seed % 3) {
        s.crash(NodeId(rng.gen_range(1..n as u32)), rng.gen_range(1..=horizon));
    }
    (g, s, horizon)
}

/// What one probe run exposes without any sink.
type ProbeObservation = (Vec<(Vec<Round>, Vec<(NodeId, Round, Round)>)>, MetricsFingerprint);

fn run_probes(
    seed: u64,
    sink: Option<Box<dyn TraceSink>>,
) -> (ProbeObservation, Engine<Ping, Probe>) {
    let (g, s, horizon) = probe_setup(seed);
    let mut eng = Engine::new(g, s, |v| Probe {
        me: v,
        seed,
        active_rounds: Vec::new(),
        received: Vec::new(),
    });
    if let Some(sink) = sink {
        eng.set_sink(sink);
    }
    eng.run(horizon);
    let per_node = eng
        .graph()
        .nodes()
        .map(|v| {
            let p = eng.node(v);
            (p.active_rounds.clone(), p.received.clone())
        })
        .collect();
    let fp = fingerprint(eng.metrics());
    ((per_node, fp), eng)
}

#[test]
fn engine_observers_do_not_perturb_deliveries_or_metrics() {
    for seed in 0..12u64 {
        let (quiet, _) = run_probes(seed, None);
        let (with_trace, mut eng_t) = run_probes(seed, Some(Box::new(Trace::new())));
        let (with_jsonl, mut eng_j) =
            run_probes(seed, Some(Box::new(JsonlSink::new(Vec::<u8>::new()))));
        assert_eq!(with_trace, quiet, "in-memory Trace sink perturbed seed {seed}");
        assert_eq!(with_jsonl, quiet, "JsonlSink perturbed seed {seed}");

        // The two sinks also saw the *same* event stream: the JSONL file
        // parses back into exactly the in-memory trace.
        let trace =
            eng_t.take_sink().map(|s| *(s as Box<dyn Any>).downcast::<Trace>().unwrap()).unwrap();
        let jsonl = eng_j
            .take_sink()
            .map(|s| *(s as Box<dyn Any>).downcast::<JsonlSink<Vec<u8>>>().unwrap())
            .unwrap();
        let bytes = jsonl.finish().unwrap();
        let parsed = Trace::from_jsonl(&bytes[..]).unwrap();
        assert_eq!(parsed.events(), trace.events(), "sinks diverged on seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Part 1b: the struct-of-arrays engine under the full observer stack —
// samplers, flight recorders, tees, and the telemetry hub must all
// leave its execution byte-identical too.
// ---------------------------------------------------------------------

fn run_probes_soa(
    seed: u64,
    observe: impl FnOnce(&mut SoaEngine<Ping, Probe>),
) -> (ProbeObservation, SoaEngine<Ping, Probe>) {
    let (g, s, horizon) = probe_setup(seed);
    let mut eng = SoaEngine::new(g, s, |v| Probe {
        me: v,
        seed,
        active_rounds: Vec::new(),
        received: Vec::new(),
    });
    observe(&mut eng);
    eng.run(horizon);
    let per_node = eng
        .graph()
        .nodes()
        .map(|v| {
            let p = eng.node(v);
            (p.active_rounds.clone(), p.received.clone())
        })
        .collect();
    let fp = fingerprint(eng.metrics());
    ((per_node, fp), eng)
}

#[test]
fn soa_engine_observer_stack_does_not_perturb() {
    for seed in 0..12u64 {
        let (quiet, quiet_eng) = run_probes_soa(seed, |_| {});

        // Reference event stream: the plain in-memory trace.
        let (with_trace, mut eng_t) = run_probes_soa(seed, |e| {
            e.set_sink(Box::new(Trace::new()));
        });
        assert_eq!(with_trace, quiet, "Trace sink perturbed the SoA engine on seed {seed}");
        let trace =
            eng_t.take_sink().map(|s| *(s as Box<dyn Any>).downcast::<Trace>().unwrap()).unwrap();

        // A 1-in-1 sampler is a transparent pipe: unperturbed execution,
        // and its inner sink sees every event the plain trace saw.
        let (with_sampler, mut eng_s) = run_probes_soa(seed, |e| {
            e.set_sink(Box::new(SamplingSink::new(Box::new(Trace::new()), 1, seed)));
        });
        assert_eq!(with_sampler, quiet, "SamplingSink perturbed the SoA engine on seed {seed}");
        let sampler = eng_s
            .take_sink()
            .map(|s| *(s as Box<dyn Any>).downcast::<SamplingSink>().unwrap())
            .unwrap();
        let sampled = *(sampler.into_inner() as Box<dyn Any>).downcast::<Trace>().unwrap();
        assert_eq!(sampled.events(), trace.events(), "k=1 sampler dropped events on seed {seed}");

        // A flight recorder whose ring outlives the run is a faithful
        // ledger: unperturbed execution, and the delta-encoded ring
        // decodes back into the exact event stream.
        let recorder = FlightRecorder::new(64);
        let flight = recorder.handle();
        let (with_rec, _eng_r) = run_probes_soa(seed, move |e| {
            e.set_sink(Box::new(recorder));
        });
        assert_eq!(with_rec, quiet, "FlightRecorder perturbed the SoA engine on seed {seed}");
        let ring = Trace::from_jsonl(flight.snapshot_jsonl().unwrap().as_bytes()).unwrap();
        assert_eq!(ring.events(), trace.events(), "flight ring diverged on seed {seed}");

        // A deaf recorder (delivery events suppressed at the source via
        // `wants_delivers`) takes the engine down its skip-deliveries
        // fast path — which must still deliver every message.
        let (with_deaf, _eng_d) = run_probes_soa(seed, |e| {
            e.set_sink(Box::new(FlightRecorder::new(64).without_delivers()));
        });
        assert_eq!(with_deaf, quiet, "deaf FlightRecorder perturbed the SoA engine on seed {seed}");

        // The whole stack at once: tee fanning out to a trace and a deaf
        // recorder, plus a telemetry hub fed from the round stream. Still
        // byte-identical, the teed trace still exact, and the hub's
        // counters agree with the engine's own accounting.
        let hub = Arc::new(TelemetryHub::new());
        let obs = round_observer(&hub);
        let (with_tee, mut eng_tee) = run_probes_soa(seed, move |e| {
            e.stream_rounds(obs);
            e.set_sink(Box::new(
                TeeSink::new()
                    .with(Box::new(Trace::new()))
                    .with(Box::new(FlightRecorder::new(64).without_delivers())),
            ));
        });
        assert_eq!(with_tee, quiet, "tee + hub perturbed the SoA engine on seed {seed}");
        assert_eq!(
            hub.counter("engine_bits_total").get(),
            quiet.1.total_bits,
            "hub bit counter disagrees with Metrics on seed {seed}"
        );
        assert_eq!(
            hub.counter("engine_deliveries_total").get(),
            quiet_eng.telemetry().deliveries,
            "hub delivery counter disagrees with engine telemetry on seed {seed}"
        );
        let tee = eng_tee
            .take_sink()
            .map(|s| *(s as Box<dyn Any>).downcast::<TeeSink>().unwrap())
            .unwrap();
        let teed_trace = *(tee.into_sinks().remove(0) as Box<dyn Any>).downcast::<Trace>().unwrap();
        assert_eq!(teed_trace.events(), trace.events(), "teed trace diverged on seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Part 1c: the wall-clock timeline profiler, in both of its stage-
// attribution modes (coarse without a sink, per-node with one), on both
// engine cores — pure observation, byte-identical executions.
// ---------------------------------------------------------------------

/// [`run_probes`] with a timeline installed (classic engine).
fn run_probes_timed(seed: u64, tl: &Timeline) -> ProbeObservation {
    let (g, s, horizon) = probe_setup(seed);
    let mut eng = Engine::new(g, s, |v| Probe {
        me: v,
        seed,
        active_rounds: Vec::new(),
        received: Vec::new(),
    });
    eng.set_timeline(tl, 1);
    eng.run(horizon);
    let per_node = eng
        .graph()
        .nodes()
        .map(|v| {
            let p = eng.node(v);
            (p.active_rounds.clone(), p.received.clone())
        })
        .collect();
    let fp = fingerprint(eng.metrics());
    (per_node, fp)
}

#[test]
fn timeline_profiler_does_not_perturb_either_engine() {
    for seed in 0..6u64 {
        // Classic engine, coarse mode (no sink installed).
        let (quiet, _) = run_probes(seed, None);
        let tl = Timeline::new();
        let timed = run_probes_timed(seed, &tl);
        assert_eq!(timed, quiet, "timeline perturbed the classic engine on seed {seed}");
        let data = tl.snapshot();
        assert!(
            data.spans.iter().any(|s| s.kind == SpanKind::Round),
            "timeline captured no round spans on seed {seed}"
        );

        // SoA engine, coarse mode.
        let (quiet_soa, _) = run_probes_soa(seed, |_| {});
        let tl = Timeline::new();
        let (timed_soa, _) = run_probes_soa(seed, |e| {
            e.set_timeline(&tl, 1);
        });
        assert_eq!(timed_soa, quiet_soa, "timeline perturbed the SoA engine on seed {seed}");

        // SoA engine, fine mode: timeline + trace sink flips the engines
        // into per-node stage attribution — still byte-identical, and
        // the teed trace still exact against a timeline-less reference.
        let (reference, mut eng_ref) = run_probes_soa(seed, |e| {
            e.set_sink(Box::new(Trace::new()));
        });
        let ref_trace =
            eng_ref.take_sink().map(|s| *(s as Box<dyn Any>).downcast::<Trace>().unwrap()).unwrap();
        let tl = Timeline::new();
        let (fine, mut eng_f) = run_probes_soa(seed, |e| {
            e.set_timeline(&tl, 1);
            e.set_sink(Box::new(Trace::new()));
        });
        assert_eq!(fine, reference, "fine-mode timeline perturbed the SoA engine on seed {seed}");
        assert_eq!(fine, quiet_soa, "sink + timeline perturbed the SoA engine on seed {seed}");
        let fine_trace =
            eng_f.take_sink().map(|s| *(s as Box<dyn Any>).downcast::<Trace>().unwrap()).unwrap();
        assert_eq!(
            fine_trace.events(),
            ref_trace.events(),
            "timeline changed the event stream on seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------
// Part 2: the full AGG+VERI pair protocol through the public drivers.
// ---------------------------------------------------------------------

/// The comparable surface of a [`PairReport`].
fn report_fingerprint(r: &PairReport) -> (Option<u64>, Option<bool>, Round, Option<bool>, bool) {
    (r.result(), r.verdict, r.rounds, r.correct, r.accepted())
}

fn pair_scenario(seed: u64) -> (Instance, u32, u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = 2u32;
    let n = 8 + (seed % 8) as usize;
    let g = match seed % 3 {
        0 => topology::connected_gnp(n, 0.3, &mut rng),
        1 => topology::random_tree(n, &mut rng),
        _ => topology::grid(3, n / 3),
    };
    let n = g.len();
    let horizon = 40 * u64::from(g.diameter().max(1));
    let s = {
        let mut best = FailureSchedule::none();
        for _ in 0..50 {
            let cand = schedules::random(&g, NodeId(0), (seed % 3) as usize, horizon, &mut rng);
            if cand.stretch_factor(&g, NodeId(0)) <= f64::from(c) {
                best = cand;
                break;
            }
        }
        best
    };
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..32)).collect();
    let t = 1 + (seed % 2) as u32;
    (Instance::new(g, NodeId(0), inputs, s, 31).unwrap(), c, t)
}

#[test]
fn pair_reports_and_metrics_are_identical_across_sinks() {
    for seed in 0..10u64 {
        let (inst, c, t) = pair_scenario(seed);
        let quiet = run_pair(&Sum, &inst, c, t, true);
        let (traced, sink_t) = run_pair_with_sink(
            &Sum,
            &inst,
            inst.schedule.clone(),
            c,
            t,
            true,
            0,
            Box::new(Trace::new()),
        );
        let (streamed, sink_j) = run_pair_with_sink(
            &Sum,
            &inst,
            inst.schedule.clone(),
            c,
            t,
            true,
            0,
            Box::new(JsonlSink::new(Vec::<u8>::new())),
        );

        assert_eq!(
            report_fingerprint(&traced),
            report_fingerprint(&quiet),
            "Trace sink perturbed the pair outcome on seed {seed}"
        );
        assert_eq!(
            report_fingerprint(&streamed),
            report_fingerprint(&quiet),
            "JsonlSink perturbed the pair outcome on seed {seed}"
        );
        assert_eq!(
            fingerprint(&traced.metrics),
            fingerprint(&quiet.metrics),
            "Trace sink perturbed the metrics on seed {seed}"
        );
        assert_eq!(
            fingerprint(&streamed.metrics),
            fingerprint(&quiet.metrics),
            "JsonlSink perturbed the metrics on seed {seed}"
        );

        // And the two observers agree with each other event for event.
        let trace = *(sink_t as Box<dyn Any>).downcast::<Trace>().unwrap();
        let jsonl = *(sink_j as Box<dyn Any>).downcast::<JsonlSink<Vec<u8>>>().unwrap();
        let parsed = Trace::from_jsonl(&jsonl.finish().unwrap()[..]).unwrap();
        assert_eq!(parsed.events(), trace.events(), "pair sinks diverged on seed {seed}");

        // The trace is a faithful ledger: replaying it reproduces the
        // quiet run's send accounting and AGG/VERI phase windows.
        let replayed = fingerprint(&trace.replay_metrics());
        let reference = fingerprint(&quiet.metrics);
        assert_eq!(replayed.bits_per_node, reference.bits_per_node, "seed {seed}");
        assert_eq!(replayed.per_round, reference.per_round, "seed {seed}");
        assert_eq!(replayed.phases, reference.phases, "seed {seed}");
    }
}
