//! Property-based checks of the trace ledger: the event stream a sink
//! receives is a *complete and faithful* account of the execution. Send
//! events reproduce the `record_send` ledgers exactly (per node and per
//! round), crashed nodes emit nothing after their crash, and the phase
//! markers are well-nested spans whose attributed bits partition the
//! run's total.

use std::any::Any;

use netsim::{
    topology, Engine, Event, FailureSchedule, Graph, Message, NodeId, NodeLogic, Received, Round,
    RoundCtx, Trace,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Debug, PartialEq, Eq)]
struct Ping {
    from: NodeId,
    bits: u64,
}

impl Message for Ping {
    fn bit_len(&self) -> u64 {
        self.bits
    }
}

/// Deterministic per-(node, round) traffic: whether to send, and how big.
fn traffic(seed: u64, v: NodeId, r: Round) -> Option<u64> {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(v.0).wrapping_mul(0x517c_c1b7_2722_0a95))
        .wrapping_add(r.wrapping_mul(0x2545_f491_4f6c_dd1d));
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 32;
    (x % 3 != 0).then_some(8 + x % 57)
}

struct Chatter {
    me: NodeId,
    seed: u64,
}

impl NodeLogic<Ping> for Chatter {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
        let r = ctx.round();
        for m in ctx.inbox() {
            let Received { from, msg, .. } = m;
            debug_assert!(msg.bits > 0, "from {from}");
        }
        if let Some(bits) = traffic(self.seed, self.me, r) {
            ctx.send(Ping { from: self.me, bits });
        }
    }
}

fn random_setup(seed: u64, n: usize, crashes: usize, horizon: Round) -> (Graph, FailureSchedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = if rng.gen_bool(0.5) {
        topology::connected_gnp(n, 0.25, &mut rng)
    } else {
        topology::random_tree(n, &mut rng)
    };
    let mut s = FailureSchedule::none();
    let n = g.len();
    for _ in 0..crashes {
        let v = NodeId(rng.gen_range(1..n as u32));
        let r = rng.gen_range(1..=horizon);
        s.crash(v, r);
    }
    (g, s)
}

/// Runs the chatter network to `horizon` with a [`Trace`] sink installed,
/// optionally splitting the run into `segments` contiguous phases.
fn traced_run(
    seed: u64,
    n: usize,
    crashes: usize,
    horizon: Round,
    segments: usize,
) -> (Engine<Ping, Chatter>, Trace) {
    let (g, s) = random_setup(seed, n, crashes, horizon);
    let mut eng = Engine::new(g, s, |v| Chatter { me: v, seed });
    eng.set_sink(Box::new(Trace::new()));
    if segments <= 1 {
        eng.run(horizon);
    } else {
        // Segment boundaries partition 1..=horizon into non-empty windows.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut cuts: Vec<Round> = (0..segments - 1).map(|_| rng.gen_range(1..horizon)).collect();
        cuts.push(horizon);
        cuts.sort_unstable();
        cuts.dedup();
        let mut upto = 0;
        for (k, &cut) in cuts.iter().enumerate() {
            if cut <= upto {
                continue;
            }
            eng.enter_phase(&format!("seg {k}"));
            eng.run(cut);
            eng.exit_phase();
            upto = cut;
        }
    }
    let trace =
        eng.take_sink().map(|sk| *(sk as Box<dyn Any>).downcast::<Trace>().unwrap()).unwrap();
    (eng, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Send events are the `record_send` ledger, event for event: per-node
    /// bit and logical-send sums, and per-round bit sums, agree exactly
    /// with every [`netsim::Metrics`] accessor.
    #[test]
    fn send_events_reproduce_the_metrics_ledgers(
        seed in 0u64..1_000_000,
        n in 3usize..20,
        crashes in 0usize..5,
    ) {
        let horizon: Round = 14;
        let (eng, trace) = traced_run(seed, n, crashes, horizon, 1);
        let m = eng.metrics();

        let mut bits_by_node = vec![0u64; n.max(eng.graph().len())];
        let mut logical_by_node = vec![0u64; bits_by_node.len()];
        let mut bits_by_round = std::collections::BTreeMap::<Round, u64>::new();
        for e in trace.events() {
            if let Event::Send { round, node, bits, logical, .. } = *e {
                bits_by_node[node.index()] += bits;
                logical_by_node[node.index()] += logical;
                *bits_by_round.entry(round).or_default() += bits;
            }
        }
        for v in eng.graph().nodes() {
            prop_assert_eq!(bits_by_node[v.index()], m.bits_of(v), "bits of {}", v);
            prop_assert_eq!(logical_by_node[v.index()], m.sends_of(v), "sends of {}", v);
        }
        let from_events: Vec<(Round, u64)> = bits_by_round.into_iter().collect();
        let from_metrics: Vec<(Round, u64)> = m.per_round_bits().collect();
        prop_assert_eq!(from_events, from_metrics, "per-round ledgers");
        prop_assert_eq!(
            trace.events().iter().filter_map(Event::node).count() > 0,
            m.total_bits() > 0 || trace.events().iter().any(|e| e.kind() == "crash"),
        );
    }

    /// Crashed nodes fall silent in the trace too: after a `Crash` event
    /// for node `v` in round `r`, the stream contains no event of `v` at
    /// any round ≥ `r` — and the crash is recorded at the schedule's
    /// round, exactly once.
    #[test]
    fn no_events_after_a_crash(
        seed in 0u64..1_000_000,
        n in 3usize..20,
        crashes in 1usize..6,
    ) {
        let horizon: Round = 14;
        let (_eng, trace) = traced_run(seed, n, crashes, horizon, 1);

        let mut crashed_at = std::collections::HashMap::<NodeId, Round>::new();
        for e in trace.events() {
            if let Event::Crash { round, node } = *e {
                let prev = crashed_at.insert(node, round);
                prop_assert!(prev.is_none(), "node {} crashed twice", node);
                continue;
            }
            if let Some(v) = e.node() {
                if let Some(&cr) = crashed_at.get(&v) {
                    prop_assert!(
                        e.round() < cr,
                        "{} event of crashed node {} at round {} (crashed {})",
                        e.kind(), v, e.round(), cr
                    );
                }
            }
        }
        // The log is round-monotone, so `in_round` binary search is valid.
        let rounds: Vec<Round> = trace.events().iter().map(Event::round).collect();
        prop_assert!(rounds.windows(2).all(|w| w[0] <= w[1]), "log not round-ordered");
        for r in 1..=horizon {
            let slice: Vec<&Event> = trace.in_round(r).collect();
            prop_assert!(slice.iter().all(|e| e.round() == r));
            let linear = trace.events().iter().filter(|e| e.round() == r).count();
            prop_assert_eq!(slice.len(), linear, "in_round({}) disagrees with scan", r);
        }
    }

    /// Phase markers are well-nested (stack discipline over the event
    /// stream), each phase's attributed bits equal the raw ledger window
    /// query, and the top-level phases partition the run's total traffic.
    #[test]
    fn phases_are_well_nested_and_partition_the_total(
        seed in 0u64..1_000_000,
        n in 3usize..20,
        crashes in 0usize..4,
        segments in 2usize..6,
    ) {
        let horizon: Round = 18;
        let (eng, trace) = traced_run(seed, n, crashes, horizon, segments);
        let m = eng.metrics();

        // Stack discipline: every exit matches the innermost open enter.
        let mut stack: Vec<&str> = Vec::new();
        let mut seen = 0usize;
        for e in trace.events() {
            match e {
                Event::PhaseEnter { label, .. } => {
                    stack.push(label);
                    seen += 1;
                }
                Event::PhaseExit { label, .. } => {
                    prop_assert_eq!(stack.pop(), Some(label.as_str()), "mismatched exit");
                }
                _ => {}
            }
        }
        prop_assert!(stack.is_empty(), "unclosed phases: {:?}", stack);
        prop_assert!(seen >= 1, "segmented run produced no phase markers");

        // The metrics-side spans agree with the ledger and partition it.
        let phases = m.phases();
        prop_assert_eq!(phases.len(), seen, "metrics and trace disagree on phase count");
        let mut top_bits = 0u64;
        let mut prev_end = 0;
        for ph in &phases {
            prop_assert_eq!(ph.bits, m.bits_in_rounds(ph.start..=ph.end), "{}", &ph.label);
            prop_assert!(ph.start <= ph.end);
            if ph.depth == 0 {
                prop_assert_eq!(ph.start, prev_end + 1, "top-level gap before {}", &ph.label);
                prev_end = ph.end;
                top_bits += ph.bits;
            }
        }
        prop_assert_eq!(prev_end, horizon, "top-level phases must cover the run");
        prop_assert_eq!(top_bits, m.total_bits(), "phase bits must partition the total");

        // Replaying the trace reproduces the same phase table.
        let replayed = trace.replay_metrics();
        prop_assert_eq!(replayed.phases(), phases, "replayed phases diverge");
    }
}
