//! The differential equivalence harness — the contract behind
//! `--engine soa|classic`.
//!
//! The struct-of-arrays engine is a hot-path rebuild (arena payloads,
//! CSR inbox scatter, bit-packed flood lane, lean streaming metrics);
//! nothing about the *semantics* may move. This harness runs the real
//! protocol drivers — one AGG+VERI pair, Algorithm 1's tradeoff, the
//! unknown-`f` doubling wrapper — on both engines across topology ×
//! crash-schedule matrices plus the mined adversary corpus, and asserts
//! byte-identical observables at small N via [`netsim::testkit`]:
//! v2 JSONL trace bytes, per-node/per-round bit ledgers, phase spans,
//! and the protocol decisions themselves. Any divergence names the first
//! differing trace line or meter, so a broken SoA invariant points at
//! the guilty round and node directly.

use caaf::{Caaf, Max, Sum};
use ftagg::doubling::{run_doubling_traced, DoublingConfig};
use ftagg::pair::Tweaks;
use ftagg::tradeoff::{run_tradeoff_traced, TradeoffConfig};
use ftagg::{run_pair_traced, Instance};
use netsim::testkit::{assert_equivalent, capture_parts, RunArtifacts};
use netsim::{
    adversary::schedules, topology, CorpusEntry, EngineKind, FailureSchedule, Metrics, NodeId,
    Round, Telemetry, Trace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

const C: u32 = 2;

/// Driver-level artifacts: the drivers expose their merged [`Trace`] and
/// [`Metrics`] but keep engine telemetry internal, so the wall-clock-free
/// subset is compared (trace bytes already pin every send and delivery).
fn artifacts(engine: EngineKind, trace: &Trace, metrics: &Metrics, rounds: Round) -> RunArtifacts {
    capture_parts(engine.name(), Some(trace), metrics, &Telemetry::default(), rounds)
}

/// The schedule matrix every topology runs under: clean, one clean crash,
/// one partial-broadcast crash (delivered to an id-alternating subset of
/// the victim's neighbors), and two random multi-crash schedules.
fn schedule_matrix(g: &netsim::Graph, seed: u64, horizon: Round) -> Vec<(String, FailureSchedule)> {
    let victim = NodeId((g.len() / 2) as u32).min(NodeId(g.len() as u32 - 1));
    let mut partial = FailureSchedule::none();
    partial.crash_partial(
        victim,
        2,
        g.neighbors(victim).iter().copied().filter(|v| v.0 % 2 == 0).collect(),
    );
    let mut one = FailureSchedule::none();
    one.crash(victim, 3.min(horizon));
    let mut out = vec![
        ("clean".to_string(), FailureSchedule::none()),
        ("one-crash".to_string(), one),
        ("partial-crash".to_string(), partial),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..2u64 {
        out.push((
            format!("random-{i}"),
            schedules::random(
                g,
                NodeId(0),
                1 + (seed as usize + i as usize) % 3,
                horizon,
                &mut rng,
            ),
        ));
    }
    out
}

fn both_engines(inst: &Instance) -> [Instance; 2] {
    [inst.clone().with_engine(EngineKind::Classic), inst.clone().with_engine(EngineKind::Soa)]
}

// ---------------------------------------------------------------------
// One AGG+VERI pair
// ---------------------------------------------------------------------

fn assert_pair_equivalent<C2: Caaf>(op: &C2, inst: &Instance, t: u32, context: &str) {
    let [classic, soa] = both_engines(inst);
    let (rc, tc) =
        run_pair_traced(op, &classic, classic.schedule.clone(), C, t, true, 0, Tweaks::default());
    let (rs, ts) =
        run_pair_traced(op, &soa, soa.schedule.clone(), C, t, true, 0, Tweaks::default());
    assert_eq!(rc.outcome, rs.outcome, "{context}: AGG outcome");
    assert_eq!(rc.verdict, rs.verdict, "{context}: VERI verdict");
    assert_eq!(rc.rounds, rs.rounds, "{context}: rounds");
    assert_eq!(rc.correct, rs.correct, "{context}: oracle");
    assert_equivalent(
        &artifacts(EngineKind::Classic, &tc, &rc.metrics, rc.rounds),
        &artifacts(EngineKind::Soa, &ts, &rs.metrics, rs.rounds),
        context,
    );
}

#[test]
fn pair_runs_are_byte_identical_across_engines() {
    let topos: Vec<(&str, netsim::Graph)> = vec![
        ("path-6", topology::path(6)),
        ("grid-3x3", topology::grid(3, 3)),
        ("star-7", topology::star(7)),
    ];
    for (tname, g) in topos {
        let n = g.len();
        let d = g.diameter();
        let horizon = Round::from(21 * C * d.max(1));
        for (sname, s) in schedule_matrix(&g, 0xa11ce ^ n as u64, horizon) {
            let inputs: Vec<u64> = (0..n as u64).map(|i| 1 + (i * 7) % 32).collect();
            let inst = Instance::new(g.clone(), NodeId(0), inputs, s, 32).unwrap();
            let t = (inst.edge_failures() as u32).max(1);
            assert_pair_equivalent(&Sum, &inst, t, &format!("pair sum {tname}/{sname}"));
        }
    }
    // And a different (idempotent) aggregate on one of the matrices.
    let g = topology::grid(3, 3);
    let inputs: Vec<u64> = (0..9u64).map(|i| (i * 13) % 40).collect();
    let mut s = FailureSchedule::none();
    s.crash(NodeId(4), 2);
    let inst = Instance::new(g, NodeId(0), inputs, s, 40).unwrap();
    assert_pair_equivalent(&Max, &inst, 4, "pair max grid-3x3/one-crash");
}

#[test]
fn randomized_pair_instances_are_byte_identical_across_engines() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xE0_0E ^ seed);
        let n = 5 + (seed % 8) as usize;
        let g = topology::connected_gnp(n, 0.35, &mut rng);
        let horizon = Round::from(21 * C * g.diameter().max(1));
        let s = schedules::random(&g, NodeId(0), (seed % 3) as usize, horizon, &mut rng);
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
        let inst = Instance::new(g, NodeId(0), inputs, s, 49).unwrap();
        let t = (inst.edge_failures() as u32).max(1);
        assert_pair_equivalent(&Sum, &inst, t, &format!("pair random seed {seed}"));
    }
}

// ---------------------------------------------------------------------
// Algorithm 1 (tradeoff driver)
// ---------------------------------------------------------------------

#[test]
fn tradeoff_runs_are_byte_identical_across_engines() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x7ade ^ seed);
        let n = 8 + (seed % 10) as usize;
        let g = topology::connected_gnp(n, 0.3, &mut rng);
        let b = 21 * u64::from(C) * (1 + seed % 3);
        let horizon = b * u64::from(g.diameter().max(1));
        let s = {
            // Keep the stretch within c so Algorithm 1's guarantees apply
            // (mirrors `runner_determinism`'s trial generator).
            let mut best = FailureSchedule::none();
            for _ in 0..50 {
                let cand = schedules::random(&g, NodeId(0), (seed % 4) as usize, horizon, &mut rng);
                if cand.stretch_factor(&g, NodeId(0)) <= f64::from(C) {
                    best = cand;
                    break;
                }
            }
            best
        };
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let inst = Instance::new(g, NodeId(0), inputs, s, 63).unwrap();
        let cfg = TradeoffConfig { b, c: C, f: inst.edge_failures().max(1), seed };
        let [classic, soa] = both_engines(&inst);
        let (rc, tc) = run_tradeoff_traced(&Sum, &classic, &cfg);
        let (rs, ts) = run_tradeoff_traced(&Sum, &soa, &cfg);
        let context = format!("tradeoff seed {seed}");
        assert_eq!(rc.result, rs.result, "{context}: result");
        assert_eq!(rc.correct, rs.correct, "{context}: oracle");
        assert_eq!(rc.rounds, rs.rounds, "{context}: rounds");
        assert_eq!(rc.flooding_rounds, rs.flooding_rounds, "{context}: TC");
        assert_eq!(rc.pairs_run, rs.pairs_run, "{context}: pairs run");
        assert_eq!(rc.used_fallback, rs.used_fallback, "{context}: fallback");
        assert_eq!((rc.x, rc.t), (rs.x, rs.t), "{context}: layout");
        assert_equivalent(
            &artifacts(EngineKind::Classic, &tc, &rc.metrics, rc.rounds),
            &artifacts(EngineKind::Soa, &ts, &rs.metrics, rs.rounds),
            &context,
        );
    }
}

// ---------------------------------------------------------------------
// Doubling wrapper (unknown f)
// ---------------------------------------------------------------------

#[test]
fn doubling_runs_are_byte_identical_across_engines() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xD0_0B ^ seed);
        let n = 6 + (seed % 6) as usize;
        let g = topology::connected_gnp(n, 0.4, &mut rng);
        let s = schedules::random(&g, NodeId(0), 1 + (seed % 3) as usize, 60, &mut rng);
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..32)).collect();
        let inst = Instance::new(g, NodeId(0), inputs, s, 31).unwrap();
        let cfg = DoublingConfig { c: C, max_stages: 4 };
        let [classic, soa] = both_engines(&inst);
        let (rc, tc) = run_doubling_traced(&Sum, &classic, &cfg);
        let (rs, ts) = run_doubling_traced(&Sum, &soa, &cfg);
        let context = format!("doubling seed {seed}");
        assert_eq!(rc.result, rs.result, "{context}: result");
        assert_eq!(rc.correct, rs.correct, "{context}: oracle");
        assert_eq!(rc.stages, rs.stages, "{context}: stages");
        assert_eq!(rc.final_guess, rs.final_guess, "{context}: final guess");
        assert_eq!(rc.rounds, rs.rounds, "{context}: rounds");
        assert_eq!(rc.used_fallback, rs.used_fallback, "{context}: fallback");
        assert_equivalent(
            &artifacts(EngineKind::Classic, &tc, &rc.metrics, rc.rounds),
            &artifacts(EngineKind::Soa, &ts, &rs.metrics, rs.rounds),
            &context,
        );
    }
}

// ---------------------------------------------------------------------
// The mined adversary corpus
// ---------------------------------------------------------------------

/// Every committed mined schedule — hill-climbed to maximize protocol
/// cost, so disproportionately likely to hit engine corner cases — must
/// produce byte-identical traced executions on both engines.
#[test]
fn mined_corpus_runs_are_byte_identical_across_engines() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "corpus"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "mined corpus is part of the equivalence matrix");
    for p in &paths {
        let entry =
            CorpusEntry::from_text(&std::fs::read_to_string(p).expect("corpus entry readable"))
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", p.display()));
        assert_eq!(entry.meta_str("op"), Some("sum"), "{}: harness covers sum", p.display());
        let f = entry
            .meta_str("protocol")
            .and_then(|t| t.strip_prefix("tradeoff:"))
            .and_then(|f| f.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("{}: harness covers tradeoff entries", p.display()));
        let cfg = TradeoffConfig {
            b: entry.meta_u64("b").expect("corpus records b"),
            c: entry.meta_u64("c").expect("corpus records c") as u32,
            f,
            seed: 0,
        };
        let inst = Instance::new(
            entry.graph.clone(),
            entry.root,
            entry.inputs.clone(),
            entry.schedule.clone(),
            entry.max_input,
        )
        .unwrap();
        let [classic, soa] = both_engines(&inst);
        let (rc, tc) = run_tradeoff_traced(&Sum, &classic, &cfg);
        let (rs, ts) = run_tradeoff_traced(&Sum, &soa, &cfg);
        let context = format!("corpus {}", p.display());
        assert_eq!(rc.result, rs.result, "{context}: result");
        assert_eq!(rc.rounds, rs.rounds, "{context}: rounds");
        assert!(rc.correct && rs.correct, "{context}: both engines correct");
        assert_equivalent(
            &artifacts(EngineKind::Classic, &tc, &rc.metrics, rc.rounds),
            &artifacts(EngineKind::Soa, &ts, &rs.metrics, rs.rounds),
            &context,
        );
    }
}
