//! Regression gate for the mined-adversary corpus (`tests/corpus/`):
//! every committed entry must parse, replay to its recorded objective
//! value bit for bit under the strict watchdog, and — for the promoted
//! E6 entries — still strictly beat the random-sweep worst case for its
//! grid cell, the property that earned it a place in the corpus.

use caaf::Sum;
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg_bench::search::{replay_entry, replay_entry_on};
use ftagg_bench::Env;
use netsim::{CorpusEntry, EngineKind, NodeId};
use std::path::{Path, PathBuf};

fn corpus_paths() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("tests/corpus must exist: {e}"))
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "corpus"))
        .collect();
    paths.sort();
    paths
}

fn load(path: &Path) -> CorpusEntry {
    let text = std::fs::read_to_string(path).expect("corpus entry readable");
    CorpusEntry::from_text(&text)
        .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()))
}

/// The random-sweep worst root CC for an E6 grid cell, recomputed exactly
/// as `thm1_upper` measures it (same env seeds, same trial configs).
fn e6_random_worst(spine: usize, f: usize, b: u64) -> u64 {
    let n = 2 * spine;
    (0..4u64)
        .map(|trial| {
            let seed = 9_000_000 + 31 * (n as u64) + 7 * (f as u64) + b + trial;
            let inst = Env::caterpillar(seed, spine, f, b, 2).instance();
            let r = run_tradeoff(&Sum, &inst, &TradeoffConfig { b, c: 2, f, seed: trial });
            assert!(r.correct);
            r.metrics.bits_of(NodeId(0))
        })
        .max()
        .unwrap()
}

#[test]
fn corpus_is_nonempty_and_parses() {
    let paths = corpus_paths();
    assert!(paths.len() >= 3, "at least the three promoted E6 entries: {paths:?}");
    for p in &paths {
        let entry = load(p);
        assert_eq!(
            p.file_stem().and_then(|s| s.to_str()),
            Some(entry.name.as_str()),
            "file name matches the entry name",
        );
        // Serialization is a fixed point, so `--mine` regeneration diffs
        // cleanly against the committed files.
        assert_eq!(CorpusEntry::from_text(&entry.to_text()).unwrap().to_text(), entry.to_text());
    }
}

#[test]
fn every_entry_replays_bit_for_bit_under_strict_watchdog() {
    for p in corpus_paths() {
        let entry = load(&p);
        let replay = replay_entry(&entry, true)
            .unwrap_or_else(|e| panic!("{} fails to replay: {e}", p.display()));
        assert_eq!(
            replay.value,
            entry.value,
            "{}: replayed objective {} != recorded {}",
            p.display(),
            replay.value,
            entry.value,
        );
        assert!(replay.clean, "{}: strict watchdog flagged the replay", p.display());
        assert_eq!(replay.counterexamples, 0, "{}: replay produced wrong results", p.display());
    }
}

/// Differential-equivalence gate over the mined corpus: every entry —
/// schedules hill-climbed specifically to stress the protocol — must
/// replay through the struct-of-arrays engine to the exact recorded
/// objective, clean under the strict watchdog, with zero counterexamples,
/// just as it does on the classic engine.
#[test]
fn every_entry_replays_identically_on_the_soa_engine() {
    for p in corpus_paths() {
        let entry = load(&p);
        let soa = replay_entry_on(&entry, true, EngineKind::Soa)
            .unwrap_or_else(|e| panic!("{} fails to replay on soa: {e}", p.display()));
        assert_eq!(
            soa.value,
            entry.value,
            "{}: soa objective {} != recorded {}",
            p.display(),
            soa.value,
            entry.value,
        );
        assert!(soa.clean, "{}: strict watchdog flagged the soa replay", p.display());
        assert_eq!(soa.counterexamples, 0, "{}: soa replay produced wrong results", p.display());
    }
}

#[test]
fn e6_entries_still_beat_the_random_sweep() {
    let mut checked = 0;
    for p in corpus_paths() {
        let entry = load(&p);
        if entry.meta_str("suite") != Some("e6") {
            continue;
        }
        let spine = entry.meta_u64("spine").expect("e6 entry records spine") as usize;
        let f = entry.meta_u64("f_budget").expect("e6 entry records f_budget") as usize;
        let b = entry.meta_u64("b").expect("e6 entry records b");
        assert_eq!(entry.graph.len(), 2 * spine, "{}: caterpillar n = 2·spine", p.display());
        let worst = e6_random_worst(spine, f, b);
        assert!(
            entry.value > worst,
            "{}: mined root CC {} no longer beats the random-sweep worst {}",
            p.display(),
            entry.value,
            worst,
        );
        checked += 1;
    }
    assert!(checked >= 3, "at least three promoted E6 cells, found {checked}");
}
