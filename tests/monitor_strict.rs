//! Strict-watchdog coverage over the experiment configurations.
//!
//! The E1/E2 regeneration bins (`fig1_landscape`, `table2_guarantees`) run
//! every execution under the strict invariant watchdog; these tests pin
//! the same property — zero violations of the budget, crash-silence,
//! causality, phase-discipline, and CAAF-envelope invariants — on reduced
//! slices of those configurations so the guarantee is enforced by
//! `cargo test` too, not only by running the bins.

use caaf::Sum;
use ftagg::monitored::run_pair_engine_monitored;
use ftagg::tradeoff::{run_tradeoff_monitored, TradeoffConfig};
use ftagg::Instance;
use ftagg_bench::Env;
use netsim::{adversary::schedules, topology, NodeId, Runner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

/// Reduced table2-style pair slice: random G(n,p) / cycle / caterpillar
/// instances with random crash schedules, AGG + VERI both monitored in
/// strict mode (a violation panics), lenient report asserted clean too.
/// Uses the engine variant, as the Table 2 bin does: with more failures
/// than `t` the paper gives no correctness guarantee, so the CAAF
/// envelope is not an invariant on this slice.
#[test]
fn strict_watchdog_clean_on_table2_style_pairs() {
    let seeds: Vec<u64> = (0..60).collect();
    let ran = Runner::new(0).run(&seeds, |trial| {
        let mut rng = StdRng::seed_from_u64(0x007A_B1E2 ^ trial);
        let inst = match trial % 3 {
            0 => {
                let g = topology::connected_gnp(18, 0.16, &mut rng);
                let horizon = 26 * u64::from(g.diameter()) + 10;
                let k = rng.gen_range(0..5);
                let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
                let inputs: Vec<u64> = (0..18).map(|_| rng.gen_range(0..32)).collect();
                Instance::new(g, NodeId(0), inputs, s, 31).unwrap()
            }
            1 => {
                let g = topology::cycle(12);
                let horizon = 26 * u64::from(g.diameter()) + 10;
                let k = rng.gen_range(0..4);
                let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
                let inputs: Vec<u64> = (0..12).map(|_| rng.gen_range(0..16)).collect();
                Instance::new(g, NodeId(0), inputs, s, 15).unwrap()
            }
            _ => {
                let g = topology::caterpillar(7, 2);
                let n = g.len();
                let horizon = 26 * u64::from(g.diameter()) + 10;
                let k = rng.gen_range(0..4);
                let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
                let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..8)).collect();
                Instance::new(g, NodeId(0), inputs, s, 7).unwrap()
            }
        };
        if inst.schedule.stretch_factor(&inst.graph, inst.root) > f64::from(C) {
            return false;
        }
        let t = rng.gen_range(0..5);
        let (_eng, _params, monitor) =
            run_pair_engine_monitored(&Sum, &inst, inst.schedule.clone(), C, t, true, true);
        assert!(monitor.is_clean(), "trial {trial}: {}", monitor.render());
        true
    });
    let executed = ran.into_iter().filter(|&x| x).count();
    assert!(executed >= 30, "too many stretch-violating schedules skipped: {executed}");
}

/// Reduced fig1-style tradeoff slice: caterpillar instances across a few
/// TC budgets, the full Algorithm 1 regeneration loop monitored strict.
#[test]
fn strict_watchdog_clean_on_fig1_style_tradeoff_slice() {
    let f_bound = 12;
    let work: Vec<u64> =
        [42u64, 84].iter().flat_map(|&b| (0..3).map(move |t| b * 10 + t)).collect();
    Runner::new(0).run(&work, |item| {
        let b = item / 10;
        let trial = item % 10;
        let env = Env::caterpillar(1000 * b + trial, 24, f_bound, b, C);
        let inst = env.instance();
        let cfg = TradeoffConfig { b, c: C, f: f_bound, seed: trial };
        let (r, monitor) = run_tradeoff_monitored(&Sum, &inst, &cfg, true);
        assert!(r.correct, "b = {b}, trial {trial}: incorrect result");
        assert!(monitor.is_clean(), "b = {b}, trial {trial}: {}", monitor.render());
    });
}
