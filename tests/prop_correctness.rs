//! Property-based end-to-end correctness: on random connected graphs with
//! random oblivious crash schedules (filtered to the model's `c·d`
//! assumption), every protocol in the repository must emit a correct
//! result — the paper's zero-error requirement.

use caaf::Sum;
use ftagg::baselines::{run_brute, run_folklore};
use ftagg::doubling::{run_doubling, DoublingConfig};
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{adversary::schedules, topology, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

/// Builds a random instance from a seed; returns `None` when the sampled
/// schedule violates the stretch assumption.
fn make_instance(seed: u64, n: usize, crashes: usize) -> Option<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = if rng.gen_bool(0.5) {
        topology::connected_gnp(n, 0.15, &mut rng)
    } else {
        topology::random_tree(n, &mut rng)
    };
    let horizon = 300 * u64::from(g.diameter());
    let s = schedules::random(&g, NodeId(0), crashes, horizon, &mut rng);
    if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
        return None;
    }
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    Some(Instance::new(g, NodeId(0), inputs, s, 63).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tradeoff_always_correct(seed in 0u64..1_000_000, n in 8usize..28, crashes in 0usize..5, b_mult in 1u64..6) {
        if let Some(inst) = make_instance(seed, n, crashes) {
            let cfg = TradeoffConfig {
                b: 21 * u64::from(C) * b_mult,
                c: C,
                f: inst.edge_failures().max(1),
                seed,
            };
            let r = run_tradeoff(&Sum, &inst, &cfg);
            prop_assert!(r.correct, "seed {seed}: result {} incorrect", r.result);
            prop_assert!(r.flooding_rounds <= cfg.b + 1, "TC {} > budget {}", r.flooding_rounds, cfg.b);
        }
    }

    #[test]
    fn brute_always_correct(seed in 0u64..1_000_000, n in 4usize..30, crashes in 0usize..8) {
        if let Some(inst) = make_instance(seed, n, crashes) {
            let r = run_brute(&Sum, &inst, inst.schedule.clone(), C, 0);
            prop_assert!(r.correct, "seed {seed}: brute result {} incorrect", r.result);
        }
    }

    #[test]
    fn folklore_always_correct_when_not_exhausted(seed in 0u64..1_000_000, n in 4usize..24, crashes in 0usize..4) {
        if let Some(inst) = make_instance(seed, n, crashes) {
            let r = run_folklore(&Sum, &inst, C, 2 * crashes + 2);
            if !r.exhausted {
                prop_assert!(r.correct, "seed {seed}: folklore result {} incorrect", r.result);
            }
        }
    }

    #[test]
    fn doubling_always_correct(seed in 0u64..1_000_000, n in 8usize..20, crashes in 0usize..3) {
        if let Some(inst) = make_instance(seed, n, crashes) {
            let r = run_doubling(&Sum, &inst, &DoublingConfig { c: C, max_stages: 6 });
            prop_assert!(r.correct, "seed {seed}: doubling result {} incorrect", r.result);
        }
    }
}
