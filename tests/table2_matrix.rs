//! E2 — Table 2: the guarantee matrix of AGG and VERI.
//!
//! | scenario | AGG | VERI |
//! |---|---|---|
//! | ≤ t edge failures (⟹ no LFC) | correct result | true |
//! | > t failures, no LFC | correct result or abort | (no guarantee) |
//! | > t failures, LFC | (no guarantee) | false |
//!
//! Hundreds of randomized pair executions are classified into their
//! scenario by the white-box oracle and checked against the row's
//! guarantee.

use caaf::Sum;
use ftagg::analysis::{classify, Scenario};
use ftagg::pair::AggOutcome;
use ftagg::run::run_pair_engine;
use ftagg::Instance;
use netsim::{adversary::schedules, topology, FailureSchedule, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

struct Tally {
    few: usize,
    many_no_lfc: usize,
    many_lfc: usize,
}

fn run_matrix(mut make: impl FnMut(u64) -> (Instance, u32)) -> Tally {
    let mut tally = Tally { few: 0, many_no_lfc: 0, many_lfc: 0 };
    for trial in 0..120 {
        let (inst, t) = make(trial);
        if inst.schedule.stretch_factor(&inst.graph, inst.root) > f64::from(C) {
            continue; // outside the model's c·d assumption
        }
        let (eng, params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), C, t, true);
        let (scenario, _) = classify(&inst, &inst.schedule, &eng, &params);
        let root = eng.node(inst.root);
        let outcome = root.agg_outcome();
        let verdict = root.veri_verdict();
        let correct = |v: u64| inst.correct_interval(&Sum, params.total_rounds()).contains(v);
        match scenario {
            Scenario::FewFailures => {
                tally.few += 1;
                match outcome {
                    AggOutcome::Result(v) => assert!(
                        correct(v),
                        "trial {trial}: scenario 1 result {v} incorrect (t = {t})"
                    ),
                    AggOutcome::Aborted => panic!("trial {trial}: scenario 1 must not abort"),
                }
                assert!(verdict, "trial {trial}: scenario 1 VERI must be true");
            }
            Scenario::ManyFailuresNoLfc => {
                tally.many_no_lfc += 1;
                if let AggOutcome::Result(v) = outcome {
                    assert!(correct(v), "trial {trial}: scenario 2 result {v} incorrect (t = {t})");
                }
                // VERI unconstrained.
            }
            Scenario::ManyFailuresLfc => {
                tally.many_lfc += 1;
                assert!(!verdict, "trial {trial}: scenario 3 VERI must be false");
            }
        }
    }
    tally
}

#[test]
fn table2_random_graphs() {
    let tally = run_matrix(|trial| {
        let mut rng = StdRng::seed_from_u64(1000 + trial);
        let g = topology::connected_gnp(20, 0.15, &mut rng);
        let horizon = 13 * u64::from(C) * u64::from(g.diameter()) + 10;
        let k = rng.gen_range(0..5);
        let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
        let inputs: Vec<u64> = (0..20).map(|_| rng.gen_range(0..32)).collect();
        let t = rng.gen_range(0..5);
        (Instance::new(g, NodeId(0), inputs, s, 31).unwrap(), t)
    });
    assert!(tally.few >= 20, "want scenario-1 coverage, got {}", tally.few);
    assert!(
        tally.many_no_lfc + tally.many_lfc >= 10,
        "want >t coverage, got {} + {}",
        tally.many_no_lfc,
        tally.many_lfc
    );
}

#[test]
fn table2_cycles_force_lfcs() {
    // Cycles keep blocked subtrees root-connected, the breeding ground for
    // LFCs: kill a run of consecutive nodes near the root's neighbor.
    let tally = run_matrix(|trial| {
        let mut rng = StdRng::seed_from_u64(5000 + trial);
        let n = 16;
        let g = topology::cycle(n);
        let cd = u64::from(C) * u64::from(g.diameter());
        let run_len = rng.gen_range(1..4usize);
        let mut s = FailureSchedule::none();
        // Nodes 1..=run_len die just after tree construction: a failed
        // chain whose descendants stay alive around the cycle.
        for v in 1..=run_len {
            s.crash(NodeId(v as u32), 2 * cd + 2 + rng.gen_range(0u64..3));
        }
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..16)).collect();
        let t = rng.gen_range(1..4);
        (Instance::new(g, NodeId(0), inputs, s, 15).unwrap(), t)
    });
    assert!(tally.many_lfc >= 10, "this family should produce LFCs, got {}", tally.many_lfc);
}

#[test]
fn table2_caterpillars() {
    // Caterpillar spines create deep trees where witness horizons (2t)
    // actually truncate.
    let tally = run_matrix(|trial| {
        let mut rng = StdRng::seed_from_u64(9000 + trial);
        let g = topology::caterpillar(8, 2);
        let n = g.len();
        let horizon = 13 * u64::from(C) * u64::from(g.diameter()) + 10;
        let k = rng.gen_range(0..4);
        let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let t = rng.gen_range(0..3);
        (Instance::new(g, NodeId(0), inputs, s, 7).unwrap(), t)
    });
    assert!(tally.few + tally.many_no_lfc + tally.many_lfc >= 60);
}
