//! Golden-trace conformance: on a fixed tiny instance, the exact rounds in
//! which each node broadcasts are pinned against Algorithms 2 and 3's
//! schedules. Any timing regression in the phase arithmetic shows up here
//! as a changed round number, not as a subtle downstream correctness bug.
//!
//! Instance: failure-free path `0-1-2-3`, c = 1, d = 3 (so cd = 3), t = 1.
//!
//! Expected schedule (execution-local rounds):
//!
//! | phase | rounds | events |
//! |---|---|---|
//! | A1 tree | 1..=7 | tc waves at 1/3/5, acks at 2/4/6 |
//! | A2 aggregation | 8..=14 | level-l node acts at `7 + (3 − l + 1)` |
//! | A3 speculative | 15..=21 | root floods at 15; others forward |
//! | A4 selection | 22..=25 | determinations at 22, forwards after |
//! | V1 | 26..=32 | root's bit at 26, forwards 27/28 |
//! | V2 | 33..=39 | beacon at `32 + (3 − l + 1)` |
//! | V3 | 40..=43 | (no failed parents: silence) |

use caaf::Sum;
use ftagg::msg::Envelope;
use ftagg::pair::{PairNode, PairParams, Tweaks};
use ftagg::{Instance, Model};
use netsim::testkit::{assert_equivalent, capture};
use netsim::{
    topology, AnyEngine, Engine, EngineKind, Event, FailureSchedule, JsonlSink, NodeId, Trace,
};

fn run_traced() -> Engine<Envelope, PairNode<Sum>> {
    let g = topology::path(4);
    let inst = Instance::new(g, NodeId(0), vec![1, 2, 3, 4], FailureSchedule::none(), 4).unwrap();
    let params = PairParams {
        model: Model { n: 4, root: NodeId(0), d: 3, c: 1, max_input: 4 },
        t: 1,
        run_veri: true,
        tweaks: Tweaks::default(),
    };
    let inputs = inst.inputs.clone();
    let mut eng = Engine::new(inst.graph.clone(), FailureSchedule::none(), |v| {
        PairNode::new(params, Sum, v, inputs[v.index()])
    });
    eng.enable_trace();
    eng.run(params.total_rounds());
    eng
}

#[test]
fn send_rounds_match_the_pseudocode_schedule() {
    let eng = run_traced();
    let t = eng.trace().expect("tracing enabled");
    // cd = 3. Phase starts: A2 at 8, A3 at 15, A4 at 22, V1 at 26, V2 at 33.
    //
    // Node 0 (root, level 0):
    //   1: tree_construct. 10+1=11: aggregation action (cd-0+1=4 → 7+4).
    //   15: psum flood. 16: forward node 1's... no — failure-free: only
    //   the root floods in A3; nodes forward it (they send as forwarders).
    //   22: (root's own determination for its psum). 26: detect bit.
    //   36: V2 beacon (32 + 3-0+1 = 36).
    let r0 = t.send_rounds(NodeId(0));
    assert!(r0.contains(&1), "root tc at round 1: {r0:?}");
    assert!(r0.contains(&11), "root aggregation at 11: {r0:?}");
    assert!(r0.contains(&15), "root psum flood at 15: {r0:?}");
    assert!(r0.contains(&22), "root determination at 22: {r0:?}");
    assert!(r0.contains(&26), "root V1 bit at 26: {r0:?}");
    assert!(r0.contains(&36), "root V2 beacon at 36: {r0:?}");

    // Node 1 (level 1): activated round 2 (ack), tc at 3, aggregation at
    // 7 + (3-1+1) = 10, forwards root's flood at 16. At 22 node 1 is
    // *itself* a witness of the root's psum (distance 1 ≤ t) and initiates
    // the identical determination — the paper's "flooded multiple times,
    // identical content" case; the root's own copy arriving at 23 is then
    // deduplicated. V1 bit forward at 27, V2 beacon at 32 + (3-1+1) = 35.
    let r1 = t.send_rounds(NodeId(1));
    assert_eq!(r1, vec![2, 3, 10, 16, 22, 27, 35], "node 1 schedule");

    // Node 2 (level 2): ack at 4, tc at 5, aggregation at 9, forward flood
    // 17, forward the (deduplicated) determination at 23, forward V1 bit
    // 28, beacon at 34.
    let r2 = t.send_rounds(NodeId(2));
    assert_eq!(r2, vec![4, 5, 9, 17, 23, 28, 34], "node 2 schedule");

    // Node 3 (leaf, level 3): ack at 6, tc at 7, aggregation at 8 (first!),
    // forward flood 18, forward determination 24, forward V1 29, beacon 33.
    let r3 = t.send_rounds(NodeId(3));
    assert_eq!(r3, vec![6, 7, 8, 18, 24, 29, 33], "node 3 schedule");
}

/// Golden snapshot of the JSONL trace format on the same instance, with
/// AGG/VERI annotated as phases and the root's decision recorded.
///
/// The first line is the schema header; this test asserts on its version
/// field (`"v":2` = `netsim::TRACE_SCHEMA_VERSION`). **If you change the
/// on-disk format, bump `TRACE_SCHEMA_VERSION` and re-pin these lines** —
/// saved traces in formats newer than the reader must be rejected loudly
/// by `Trace::from_jsonl`, never reinterpreted silently (v1, the one
/// compatible ancestor, parses with empty lineage — see
/// `tests/schema_guard.rs`).
#[test]
fn jsonl_trace_format_snapshot() {
    let g = topology::path(4);
    let inst = Instance::new(g, NodeId(0), vec![1, 2, 3, 4], FailureSchedule::none(), 4).unwrap();
    let params = PairParams {
        model: Model { n: 4, root: NodeId(0), d: 3, c: 1, max_input: 4 },
        t: 1,
        run_veri: true,
        tweaks: Tweaks::default(),
    };
    let inputs = inst.inputs.clone();
    let mut eng: Engine<Envelope, PairNode<Sum>> =
        Engine::new(inst.graph.clone(), FailureSchedule::none(), |v| {
            PairNode::new(params, Sum, v, inputs[v.index()])
        });
    eng.set_sink(Box::new(JsonlSink::new(Vec::<u8>::new())));
    eng.enter_phase("AGG");
    eng.run(params.agg_rounds());
    eng.exit_phase();
    eng.enter_phase("VERI");
    eng.run(params.total_rounds());
    eng.exit_phase();
    if let ftagg::AggOutcome::Result(v) = eng.node(NodeId(0)).agg_outcome() {
        eng.annotate(Event::Decide { round: eng.round(), node: NodeId(0), value: v });
    }
    let sink = eng.take_sink().expect("sink installed");
    let sink: Box<JsonlSink<Vec<u8>>> =
        (sink as Box<dyn std::any::Any>).downcast().expect("the sink we installed");
    let text = String::from_utf8(sink.finish().unwrap()).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    // The pinned on-disk format: schema header + the execution's opening
    // events, byte for byte.
    assert_eq!(
        &lines[..7],
        &[
            r#"{"schema":"ftagg-trace","v":2}"#,
            r#"{"ev":"phase_enter","r":1,"label":"AGG"}"#,
            r#"{"ev":"send","r":1,"n":0,"bits":7,"logical":1,"id":1,"kind":"tree-construct"}"#,
            r#"{"ev":"deliver","r":2,"n":1,"from":0,"bits":7,"id":2,"src":1}"#,
            r#"{"ev":"send","r":2,"n":1,"bits":6,"logical":1,"id":3,"kind":"tree-construct","causes":[2]}"#,
            r#"{"ev":"deliver","r":3,"n":0,"from":1,"bits":6,"id":4,"src":3}"#,
            r#"{"ev":"send","r":3,"n":1,"bits":9,"logical":1,"id":5,"kind":"tree-construct","causes":[2]}"#,
        ],
        "JSONL opening lines drifted — bump TRACE_SCHEMA_VERSION if intentional"
    );
    // The phase boundary and closing events (cd = 3: AGG ends at 7·3+4 = 25).
    assert_eq!(lines[50], r#"{"ev":"phase_exit","r":25,"label":"AGG"}"#);
    assert_eq!(lines[51], r#"{"ev":"phase_enter","r":26,"label":"VERI"}"#);
    assert_eq!(lines[72], r#"{"ev":"phase_exit","r":43,"label":"VERI"}"#);
    assert_eq!(lines[73], r#"{"ev":"decide","r":43,"n":0,"value":10}"#);
    assert_eq!(lines.len(), 74, "event count drifted");

    // The format round-trips: parsing the file reproduces the events and
    // the replayed metrics agree with the quiet-run accounting.
    let back = Trace::from_jsonl(text.as_bytes()).unwrap();
    assert_eq!(back.events().len(), 73);
    assert_eq!(back.send_rounds(NodeId(1)), vec![2, 3, 10, 16, 22, 27, 35]);
    let replayed = back.replay_metrics();
    let phases = replayed.phases();
    assert_eq!(phases.len(), 2);
    assert_eq!((phases[0].label.as_str(), phases[0].start, phases[0].end), ("AGG", 1, 25));
    assert_eq!((phases[1].label.as_str(), phases[1].start, phases[1].end), ("VERI", 26, 43));
    assert_eq!(phases[0].bits + phases[1].bits, replayed.total_bits());
}

/// The golden schedule is engine-independent: the struct-of-arrays core
/// reproduces the exact pinned send rounds, and its full traced execution
/// (trace bytes, ledgers, telemetry) matches the classic engine's.
#[test]
fn golden_schedule_is_pinned_on_both_engines() {
    let run = |kind: EngineKind| -> AnyEngine<Envelope, PairNode<Sum>> {
        let g = topology::path(4);
        let inst =
            Instance::new(g, NodeId(0), vec![1, 2, 3, 4], FailureSchedule::none(), 4).unwrap();
        let params = PairParams {
            model: Model { n: 4, root: NodeId(0), d: 3, c: 1, max_input: 4 },
            t: 1,
            run_veri: true,
            tweaks: Tweaks::default(),
        };
        let inputs = inst.inputs.clone();
        let mut eng = AnyEngine::new(kind, inst.graph.clone(), FailureSchedule::none(), |v| {
            PairNode::new(params, Sum, v, inputs[v.index()])
        });
        eng.enable_trace();
        eng.run(params.total_rounds());
        eng
    };
    let classic = run(EngineKind::Classic);
    let soa = run(EngineKind::Soa);
    // The pinned Algorithms 2/3 schedule, straight from the SoA trace.
    let t = soa.trace().expect("tracing enabled");
    assert_eq!(t.send_rounds(NodeId(1)), vec![2, 3, 10, 16, 22, 27, 35], "node 1 schedule");
    assert_eq!(t.send_rounds(NodeId(2)), vec![4, 5, 9, 17, 23, 28, 34], "node 2 schedule");
    assert_eq!(t.send_rounds(NodeId(3)), vec![6, 7, 8, 18, 24, 29, 33], "node 3 schedule");
    assert_equivalent(&capture(&classic), &capture(&soa), "golden instance");
}

#[test]
fn failure_free_traffic_is_quiet() {
    // The paper's first design feature: no failures ⟹ no speculative
    // floods, no critical-failure floods, no failed-parent claims. Message
    // counts are therefore minimal: every node sends exactly 7 broadcasts
    // (the schedule above), except the root's 6… let's pin totals.
    let eng = run_traced();
    let m = eng.metrics();
    for v in eng.graph().nodes() {
        let sends = m.sends_of(v);
        assert!(
            (6..=8).contains(&sends),
            "node {v} sent {sends} logical messages; expected a quiet run"
        );
    }
    // The root's flooded psum is the only psum flood.
    let root = eng.node(NodeId(0));
    assert_eq!(root.flooded_psums_seen().len(), 1);
    assert_eq!(root.compulsory_seen().len(), 1);
    assert!(root.failed_parents_seen().is_empty());
}

#[test]
fn non_zero_root_works_identically() {
    // The root id is a parameter, not an assumption: run rooted at 3.
    let g = topology::path(4);
    let inst = Instance::new(g, NodeId(3), vec![1, 2, 3, 4], FailureSchedule::none(), 4).unwrap();
    let params = PairParams {
        model: Model { n: 4, root: NodeId(3), d: 3, c: 1, max_input: 4 },
        t: 1,
        run_veri: true,
        tweaks: Tweaks::default(),
    };
    let inputs = inst.inputs.clone();
    let mut eng = Engine::new(inst.graph.clone(), FailureSchedule::none(), |v| {
        PairNode::new(params, Sum, v, inputs[v.index()])
    });
    eng.run(params.total_rounds());
    let root = eng.node(NodeId(3));
    assert_eq!(root.agg_outcome(), ftagg::AggOutcome::Result(10));
    assert!(root.veri_verdict());
    // Levels mirror: node 0 is now the deepest.
    assert_eq!(eng.node(NodeId(0)).snapshot().level, Some(3));
    assert_eq!(eng.node(NodeId(0)).snapshot().parent, Some(NodeId(1)));
}
