//! Golden-trace conformance: on a fixed tiny instance, the exact rounds in
//! which each node broadcasts are pinned against Algorithms 2 and 3's
//! schedules. Any timing regression in the phase arithmetic shows up here
//! as a changed round number, not as a subtle downstream correctness bug.
//!
//! Instance: failure-free path `0-1-2-3`, c = 1, d = 3 (so cd = 3), t = 1.
//!
//! Expected schedule (execution-local rounds):
//!
//! | phase | rounds | events |
//! |---|---|---|
//! | A1 tree | 1..=7 | tc waves at 1/3/5, acks at 2/4/6 |
//! | A2 aggregation | 8..=14 | level-l node acts at `7 + (3 − l + 1)` |
//! | A3 speculative | 15..=21 | root floods at 15; others forward |
//! | A4 selection | 22..=25 | determinations at 22, forwards after |
//! | V1 | 26..=32 | root's bit at 26, forwards 27/28 |
//! | V2 | 33..=39 | beacon at `32 + (3 − l + 1)` |
//! | V3 | 40..=43 | (no failed parents: silence) |

use caaf::Sum;
use ftagg::msg::Envelope;
use ftagg::pair::{PairNode, PairParams, Tweaks};
use ftagg::{Instance, Model};
use netsim::{topology, Engine, FailureSchedule, NodeId};

fn run_traced() -> Engine<Envelope, PairNode<Sum>> {
    let g = topology::path(4);
    let inst = Instance::new(g, NodeId(0), vec![1, 2, 3, 4], FailureSchedule::none(), 4).unwrap();
    let params = PairParams {
        model: Model { n: 4, root: NodeId(0), d: 3, c: 1, max_input: 4 },
        t: 1,
        run_veri: true,
        tweaks: Tweaks::default(),
    };
    let inputs = inst.inputs.clone();
    let mut eng = Engine::new(inst.graph.clone(), FailureSchedule::none(), |v| {
        PairNode::new(params, Sum, v, inputs[v.index()])
    });
    eng.enable_trace();
    eng.run(params.total_rounds());
    eng
}

#[test]
fn send_rounds_match_the_pseudocode_schedule() {
    let eng = run_traced();
    let t = eng.trace().expect("tracing enabled");
    // cd = 3. Phase starts: A2 at 8, A3 at 15, A4 at 22, V1 at 26, V2 at 33.
    //
    // Node 0 (root, level 0):
    //   1: tree_construct. 10+1=11: aggregation action (cd-0+1=4 → 7+4).
    //   15: psum flood. 16: forward node 1's... no — failure-free: only
    //   the root floods in A3; nodes forward it (they send as forwarders).
    //   22: (root's own determination for its psum). 26: detect bit.
    //   36: V2 beacon (32 + 3-0+1 = 36).
    let r0 = t.send_rounds(NodeId(0));
    assert!(r0.contains(&1), "root tc at round 1: {r0:?}");
    assert!(r0.contains(&11), "root aggregation at 11: {r0:?}");
    assert!(r0.contains(&15), "root psum flood at 15: {r0:?}");
    assert!(r0.contains(&22), "root determination at 22: {r0:?}");
    assert!(r0.contains(&26), "root V1 bit at 26: {r0:?}");
    assert!(r0.contains(&36), "root V2 beacon at 36: {r0:?}");

    // Node 1 (level 1): activated round 2 (ack), tc at 3, aggregation at
    // 7 + (3-1+1) = 10, forwards root's flood at 16. At 22 node 1 is
    // *itself* a witness of the root's psum (distance 1 ≤ t) and initiates
    // the identical determination — the paper's "flooded multiple times,
    // identical content" case; the root's own copy arriving at 23 is then
    // deduplicated. V1 bit forward at 27, V2 beacon at 32 + (3-1+1) = 35.
    let r1 = t.send_rounds(NodeId(1));
    assert_eq!(r1, vec![2, 3, 10, 16, 22, 27, 35], "node 1 schedule");

    // Node 2 (level 2): ack at 4, tc at 5, aggregation at 9, forward flood
    // 17, forward the (deduplicated) determination at 23, forward V1 bit
    // 28, beacon at 34.
    let r2 = t.send_rounds(NodeId(2));
    assert_eq!(r2, vec![4, 5, 9, 17, 23, 28, 34], "node 2 schedule");

    // Node 3 (leaf, level 3): ack at 6, tc at 7, aggregation at 8 (first!),
    // forward flood 18, forward determination 24, forward V1 29, beacon 33.
    let r3 = t.send_rounds(NodeId(3));
    assert_eq!(r3, vec![6, 7, 8, 18, 24, 29, 33], "node 3 schedule");
}

#[test]
fn failure_free_traffic_is_quiet() {
    // The paper's first design feature: no failures ⟹ no speculative
    // floods, no critical-failure floods, no failed-parent claims. Message
    // counts are therefore minimal: every node sends exactly 7 broadcasts
    // (the schedule above), except the root's 6… let's pin totals.
    let eng = run_traced();
    let m = eng.metrics();
    for v in eng.graph().nodes() {
        let sends = m.sends_of(v);
        assert!(
            (6..=8).contains(&sends),
            "node {v} sent {sends} logical messages; expected a quiet run"
        );
    }
    // The root's flooded psum is the only psum flood.
    let root = eng.node(NodeId(0));
    assert_eq!(root.flooded_psums_seen().len(), 1);
    assert_eq!(root.compulsory_seen().len(), 1);
    assert!(root.failed_parents_seen().is_empty());
}

#[test]
fn non_zero_root_works_identically() {
    // The root id is a parameter, not an assumption: run rooted at 3.
    let g = topology::path(4);
    let inst = Instance::new(g, NodeId(3), vec![1, 2, 3, 4], FailureSchedule::none(), 4).unwrap();
    let params = PairParams {
        model: Model { n: 4, root: NodeId(3), d: 3, c: 1, max_input: 4 },
        t: 1,
        run_veri: true,
        tweaks: Tweaks::default(),
    };
    let inputs = inst.inputs.clone();
    let mut eng = Engine::new(inst.graph.clone(), FailureSchedule::none(), |v| {
        PairNode::new(params, Sum, v, inputs[v.index()])
    });
    eng.run(params.total_rounds());
    let root = eng.node(NodeId(3));
    assert_eq!(root.agg_outcome(), ftagg::AggOutcome::Result(10));
    assert!(root.veri_verdict());
    // Levels mirror: node 0 is now the deepest.
    assert_eq!(eng.node(NodeId(0)).snapshot().level, Some(3));
    assert_eq!(eng.node(NodeId(0)).snapshot().parent, Some(NodeId(1)));
}
