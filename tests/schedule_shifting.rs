//! The interval machinery Algorithm 1 relies on: shifting a global failure
//! schedule into a sub-execution's local round frame, and attributing edge
//! failures to round windows.

use netsim::{CrashEvent, FailureSchedule, NodeId};

#[test]
fn shifted_moves_rounds_and_clamps() {
    let mut s = FailureSchedule::none();
    s.crash(NodeId(1), 5);
    s.crash(NodeId(2), 100);
    let sh = s.shifted(10);
    // Node 1 crashed before the window: dead from local round 1.
    assert_eq!(sh.event(NodeId(1)), Some(&CrashEvent::clean(1)));
    // Node 2's crash lands at local round 90.
    assert_eq!(sh.event(NodeId(2)), Some(&CrashEvent::clean(90)));
}

#[test]
fn shifted_zero_is_identity() {
    let mut s = FailureSchedule::none();
    s.crash(NodeId(3), 7);
    s.crash_partial(NodeId(4), 9, vec![NodeId(3)]);
    assert_eq!(s.shifted(0), s);
}

#[test]
fn shifted_drops_stale_partial_restrictions() {
    let mut s = FailureSchedule::none();
    s.crash_partial(NodeId(4), 9, vec![NodeId(3)]);
    // Window starts after the partial broadcast already happened: the node
    // is simply dead (no restriction left to model).
    let sh = s.shifted(9);
    assert_eq!(sh.event(NodeId(4)), Some(&CrashEvent::clean(1)));
    // Window starts right before: restriction survives, round shifts.
    let sh = s.shifted(7);
    assert_eq!(sh.event(NodeId(4)), Some(&CrashEvent::partial(2, vec![NodeId(3)])));
}

#[test]
fn composition_of_shifts() {
    let mut s = FailureSchedule::none();
    s.crash(NodeId(5), 50);
    assert_eq!(s.shifted(20).shifted(10), s.shifted(30));
}
