//! Cross-cutting consistency invariants of the implementation itself:
//! determinism under fixed seeds, agreement between the engine's bit
//! meter and the protocol's internal accounting, and report arithmetic.

use caaf::Sum;
use ftagg::run::run_pair_engine;
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{adversary::schedules, topology, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

fn make(seed: u64, n: usize, k: usize) -> Option<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = topology::connected_gnp(n, 0.15, &mut rng);
    let horizon = 26 * u64::from(g.diameter());
    let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
    if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
        return None;
    }
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100)).collect();
    Some(Instance::new(g, NodeId(0), inputs, s, 99).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn engine_meter_equals_protocol_accounting(seed in 0u64..100_000, n in 6usize..24, k in 0usize..4, t in 0u32..5) {
        // The engine's per-node bit meter and PairNode's internal
        // agg/veri counters measure the same traffic (the budget symbols
        // are the only exempt messages; they are 4-bit tags).
        if let Some(inst) = make(seed, n, k) {
            let (eng, _params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), C, t, true);
            for v in inst.graph.nodes() {
                let metered = eng.metrics().bits_of(v);
                let internal = eng.node(v).agg_bits_sent() + eng.node(v).veri_bits_sent();
                // Metered may exceed internal only by the exempt symbols.
                prop_assert!(metered >= internal, "node {v}: meter {metered} < internal {internal}");
                prop_assert!(metered - internal <= 8, "node {v}: {} exempt bits", metered - internal);
            }
        }
    }

    #[test]
    fn identical_seeds_identical_everything(seed in 0u64..100_000, n in 6usize..20) {
        if let Some(inst) = make(seed, n, 2) {
            let cfg = TradeoffConfig { b: 63, c: C, f: 5, seed };
            let a = run_tradeoff(&Sum, &inst, &cfg);
            let b = run_tradeoff(&Sum, &inst, &cfg);
            prop_assert_eq!(a.result, b.result);
            prop_assert_eq!(a.rounds, b.rounds);
            prop_assert_eq!(a.pairs_run, b.pairs_run);
            prop_assert_eq!(a.metrics.max_bits(), b.metrics.max_bits());
            prop_assert_eq!(a.metrics.total_bits(), b.metrics.total_bits());
        }
    }

    #[test]
    fn metrics_totals_are_sums(seed in 0u64..100_000, n in 6usize..20, t in 0u32..4) {
        if let Some(inst) = make(seed, n, 2) {
            let (eng, _p) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), C, t, true);
            let m = eng.metrics();
            let sum: u64 = inst.graph.nodes().map(|v| m.bits_of(v)).sum();
            prop_assert_eq!(m.total_bits(), sum);
            let max = inst.graph.nodes().map(|v| m.bits_of(v)).max().unwrap();
            prop_assert_eq!(m.max_bits(), max);
            if let Some(bn) = m.bottleneck() {
                prop_assert_eq!(m.bits_of(bn), max);
            }
        }
    }
}
