//! Property-based checks of the simulator substrate itself: the model
//! guarantees the protocols rely on (synchronous one-round delivery to
//! live graph neighbors only, crashed nodes fall permanently silent) and
//! the metering identities (system totals equal per-node and per-round
//! sums). These pin the engine's hot path — buffer reuse and shared
//! message delivery must never change *what* is delivered, only how.

use netsim::{
    topology, Engine, FailureSchedule, Graph, Message, NodeId, NodeLogic, Received, Round, RoundCtx,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A traceable payload: who sent it and in which round.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Ping {
    from: NodeId,
    sent_round: Round,
}

impl Message for Ping {
    fn bit_len(&self) -> u64 {
        48
    }
}

/// Deterministic per-(node, round) send decision — a cheap hash so every
/// reconstruction of the expected traffic agrees with the nodes'.
fn sends_in(seed: u64, v: NodeId, r: Round) -> bool {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(v.0).wrapping_mul(0x517c_c1b7_2722_0a95))
        .wrapping_add(r.wrapping_mul(0x2545_f491_4f6c_dd1d));
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 32;
    x % 3 == 0
}

/// Records everything the engine does to this node.
struct Probe {
    me: NodeId,
    seed: u64,
    /// Rounds in which `on_round` ran (must all precede this node's crash).
    active_rounds: Vec<Round>,
    /// `(sender, sent_round, received_round)` for every delivery.
    received: Vec<(NodeId, Round, Round)>,
}

impl NodeLogic<Ping> for Probe {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
        let r = ctx.round();
        self.active_rounds.push(r);
        for m in ctx.inbox() {
            let Received { from, msg } = m;
            self.received.push((from, msg.sent_round, r));
        }
        if sends_in(self.seed, self.me, r) {
            ctx.send(Ping { from: self.me, sent_round: r });
        }
    }
}

/// A random connected graph plus a partial-free crash schedule.
fn random_setup(seed: u64, n: usize, crashes: usize, horizon: Round) -> (Graph, FailureSchedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = if rng.gen_bool(0.5) {
        topology::connected_gnp(n, 0.2, &mut rng)
    } else {
        topology::random_tree(n, &mut rng)
    };
    let mut s = FailureSchedule::none();
    let n = g.len();
    for _ in 0..crashes {
        let v = NodeId(rng.gen_range(1..n as u32));
        let r = rng.gen_range(1..=horizon);
        s.crash(v, r);
    }
    (g, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The delivery matrix, reconstructed from the model's definition,
    /// must equal what the nodes observed — exactly: a message sent by a
    /// live node in round `r` reaches precisely its live graph neighbors
    /// in round `r + 1`, once each, and nobody else ever hears anything.
    #[test]
    fn delivery_is_exactly_neighbors_one_round_later(
        seed in 0u64..1_000_000,
        n in 3usize..24,
        crashes in 0usize..6,
    ) {
        let horizon: Round = 12;
        let (g, s) = random_setup(seed, n, crashes, horizon);
        let mut eng = Engine::new(g.clone(), s.clone(), |v| Probe {
            me: v,
            seed,
            active_rounds: Vec::new(),
            received: Vec::new(),
        });
        eng.run(horizon);

        for w in g.nodes() {
            // Dead nodes fall silent: no activity at or past the crash.
            for &r in &eng.node(w).active_rounds {
                prop_assert!(!s.is_dead(w, r), "dead node {w} ran in round {r}");
            }
            // Expected inbox of w, in any order: every live neighbor that
            // sent in r-1 while w is alive in r.
            let mut expected: Vec<(NodeId, Round, Round)> = Vec::new();
            for r in 2..=horizon {
                if s.is_dead(w, r) {
                    continue;
                }
                for &u in g.neighbors(w) {
                    if !s.is_dead(u, r - 1) && sends_in(seed, u, r - 1) {
                        expected.push((u, r - 1, r));
                    }
                }
            }
            let mut got = eng.node(w).received.clone();
            got.sort_unstable_by_key(|&(u, sr, rr)| (rr, sr, u.0));
            expected.sort_unstable_by_key(|&(u, sr, rr)| (rr, sr, u.0));
            prop_assert_eq!(&got, &expected, "delivery matrix of node {}", w);
            // Every delivery is from a graph neighbor, one round later.
            for &(u, sr, rr) in &got {
                prop_assert!(g.has_edge(u, w));
                prop_assert_eq!(rr, sr + 1);
            }
        }
    }

    /// Metering identities: the system total equals the sum over nodes
    /// and the sum over rounds, however the traffic is distributed.
    #[test]
    fn metrics_totals_are_consistent(
        seed in 0u64..1_000_000,
        n in 3usize..24,
        crashes in 0usize..6,
    ) {
        let horizon: Round = 12;
        let (g, s) = random_setup(seed, n, crashes, horizon);
        let mut eng = Engine::new(g.clone(), s, |v| Probe {
            me: v,
            seed,
            active_rounds: Vec::new(),
            received: Vec::new(),
        });
        eng.run(horizon);
        let m = eng.metrics();

        let per_node: u64 = g.nodes().map(|v| m.bits_of(v)).sum();
        prop_assert_eq!(m.total_bits(), per_node);

        let per_round: u64 = m.per_round_bits().map(|(_, b)| b).sum();
        prop_assert_eq!(m.total_bits(), per_round);
        prop_assert_eq!(m.bits_in_rounds(1..=horizon), m.total_bits());
        for (r, b) in m.per_round_bits() {
            prop_assert_eq!(m.bits_in_round(r), b);
            prop_assert!(b > 0);
        }
        prop_assert!(m.max_bits() <= m.total_bits());
        if let Some(last) = m.last_send_round() {
            prop_assert_eq!(m.per_round_bits().last().map(|(r, _)| r), Some(last));
        }
    }
}
