//! Long-running randomized stress (ignored by default — run with
//! `cargo test --test stress -- --ignored` when you want the heavy
//! sweep). Everything here re-checks the zero-error guarantee and budget
//! invariants over far more trials and larger instances than the default
//! suite.

use caaf::Sum;
use ftagg::analysis::{classify, Scenario};
use ftagg::msg::{agg_bit_budget, veri_bit_budget};
use ftagg::pair::AggOutcome;
use ftagg::run::run_pair_engine;
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{adversary::schedules, topology, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

#[test]
#[ignore = "heavy: ~2000 randomized executions"]
fn stress_table2_two_thousand_runs() {
    let mut counts = [0usize; 3];
    for trial in 0..2000u64 {
        let mut rng = StdRng::seed_from_u64(1_000_000 + trial);
        let n = rng.gen_range(10..40);
        let g = match trial % 4 {
            0 => topology::cycle(n.max(3)),
            1 => topology::connected_gnp(n, 0.15, &mut rng),
            2 => topology::caterpillar(n / 2, 1),
            _ => topology::random_tree(n, &mut rng),
        };
        let n = g.len();
        let horizon = 26 * u64::from(g.diameter()) + 10;
        let k = rng.gen_range(0..6);
        let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
        if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
            continue;
        }
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let t = rng.gen_range(0..6);
        let inst = Instance::new(g, NodeId(0), inputs, s, 63).unwrap();
        let (eng, params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), C, t, true);
        let (scenario, _) = classify(&inst, &inst.schedule, &eng, &params);
        let root = eng.node(inst.root);
        let iv = inst.correct_interval(&Sum, params.total_rounds());
        match scenario {
            Scenario::FewFailures => {
                counts[0] += 1;
                assert!(matches!(root.agg_outcome(), AggOutcome::Result(v) if iv.contains(v)));
                assert!(root.veri_verdict());
            }
            Scenario::ManyFailuresNoLfc => {
                counts[1] += 1;
                if let AggOutcome::Result(v) = root.agg_outcome() {
                    assert!(iv.contains(v));
                }
            }
            Scenario::ManyFailuresLfc => {
                counts[2] += 1;
                assert!(!root.veri_verdict());
            }
        }
        // Budgets always.
        for v in inst.graph.nodes() {
            assert!(eng.node(v).agg_bits_sent() <= agg_bit_budget(n, t));
            assert!(eng.node(v).veri_bits_sent() <= veri_bit_budget(n, t));
        }
    }
    assert!(counts.iter().all(|&c| c > 50), "scenario coverage: {counts:?}");
}

#[test]
#[ignore = "heavy: large-N tradeoff sweep"]
fn stress_tradeoff_large_instances() {
    for trial in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(2_000_000 + trial);
        let n = rng.gen_range(100..300);
        let g = topology::connected_gnp(n, (3.0 * (n as f64).ln() / n as f64).min(0.3), &mut rng);
        let b = 21 * u64::from(C) * rng.gen_range(1..6);
        let horizon = b * u64::from(g.diameter());
        let f = rng.gen_range(1..n / 4);
        let s = schedules::random_with_edge_budget(&g, NodeId(0), f, horizon, &mut rng);
        if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
            continue;
        }
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1024)).collect();
        let inst = Instance::new(g, NodeId(0), inputs, s, 1023).unwrap();
        let cfg = TradeoffConfig { b, c: C, f, seed: trial };
        let r = run_tradeoff(&Sum, &inst, &cfg);
        assert!(r.correct, "trial {trial} (n={n}, b={b}, f={f}): wrong result");
        assert!(r.flooding_rounds <= b + 1);
    }
}
