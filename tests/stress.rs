//! Randomized stress over the zero-error guarantee and budget invariants,
//! with every pair execution running under the strict invariant watchdog
//! ([`ftagg::monitored`]).
//!
//! The fast slice (~50 trials on small instances) runs in the default
//! suite; the heavy sweeps (thousands of trials, larger N) stay behind
//! `cargo test --test stress -- --ignored`. All of them fan trials out
//! through [`netsim::Runner`]: each trial is a pure function of its seed
//! and returns only `Send` summaries (the engine itself is not `Send`),
//! so the counts are identical at any thread count.

use caaf::Sum;
use ftagg::analysis::{classify, Scenario};
use ftagg::monitored::run_pair_engine_monitored;
use ftagg::msg::{agg_bit_budget, veri_bit_budget};
use ftagg::pair::AggOutcome;
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use ftagg_bench::search::replay_entry;
use netsim::{adversary::schedules, topology, CorpusEntry, NodeId, Runner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

/// One randomized pair execution: draw a small instance from `seed`, run
/// AGG+VERI, assert this trial's Table 2 guarantee row and the per-node
/// bit budgets, and report which scenario it landed in (`None` when the
/// drawn schedule violates the `c·d` stretch assumption and is skipped).
fn pair_trial(seed: u64) -> Option<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(10usize..40);
    let g = match seed % 4 {
        0 => topology::cycle(n.max(3)),
        1 => topology::connected_gnp(n, 0.15, &mut rng),
        2 => topology::caterpillar(n / 2, 1),
        _ => topology::random_tree(n, &mut rng),
    };
    let n = g.len();
    let horizon = 26 * u64::from(g.diameter()) + 10;
    let k = rng.gen_range(0..6);
    let s = schedules::random(&g, NodeId(0), k, horizon, &mut rng);
    if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
        return None;
    }
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    let t = rng.gen_range(0..6);
    let inst = Instance::new(g, NodeId(0), inputs, s, 63).unwrap();
    // Strict watchdog: any budget / crash-silence / causality / phase
    // violation panics the trial on the spot.
    let (eng, params, monitor) =
        run_pair_engine_monitored(&Sum, &inst, inst.schedule.clone(), C, t, true, true);
    assert!(monitor.is_clean(), "seed {seed}: {}", monitor.render());
    let (scenario, _) = classify(&inst, &inst.schedule, &eng, &params);
    let root = eng.node(inst.root);
    let iv = inst.correct_interval(&Sum, params.total_rounds());
    let idx = match scenario {
        Scenario::FewFailures => {
            assert!(matches!(root.agg_outcome(), AggOutcome::Result(v) if iv.contains(v)));
            assert!(root.veri_verdict());
            0
        }
        Scenario::ManyFailuresNoLfc => {
            if let AggOutcome::Result(v) = root.agg_outcome() {
                assert!(iv.contains(v));
            }
            1
        }
        Scenario::ManyFailuresLfc => {
            assert!(!root.veri_verdict());
            2
        }
    };
    // Budgets always.
    for v in inst.graph.nodes() {
        assert!(eng.node(v).agg_bits_sent() <= agg_bit_budget(n, t));
        assert!(eng.node(v).veri_bits_sent() <= veri_bit_budget(n, t));
    }
    Some(idx)
}

/// Folds scenario indices into per-scenario counts.
fn scenario_counts(observed: Vec<Option<usize>>) -> [usize; 3] {
    let mut counts = [0usize; 3];
    for idx in observed.into_iter().flatten() {
        counts[idx] += 1;
    }
    counts
}

/// Tier-1 slice: ~50 randomized pair executions on small instances, fast
/// enough for the default suite. Same trial body as the 2000-run sweep.
#[test]
fn stress_fast_slice_fifty_runs() {
    let seeds: Vec<u64> = (0..50).map(|t| 1_000_000 + t).collect();
    let counts = scenario_counts(Runner::new(0).run(&seeds, pair_trial));
    // Coverage here is necessarily looser than the heavy sweep's: just
    // require that the slice exercised a healthy number of executions.
    assert!(counts.iter().sum::<usize>() >= 25, "too many skipped: {counts:?}");
    assert!(counts[0] > 0, "no few-failure runs: {counts:?}");
}

/// Tier-1 slice: the mined-adversary corpus replays bit for bit under the
/// strict watchdog — deliberately-searched worst cases ride along with
/// the random stress (full gate in `corpus_replay.rs`).
#[test]
fn stress_fast_slice_corpus_replay() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus");
    let mut replayed = 0;
    for e in std::fs::read_dir(&dir).expect("tests/corpus exists").flatten() {
        let p = e.path();
        if p.extension().is_none_or(|x| x != "corpus") {
            continue;
        }
        let entry = CorpusEntry::from_text(&std::fs::read_to_string(&p).unwrap())
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", p.display()));
        let replay = replay_entry(&entry, true).expect("corpus entry replays");
        assert_eq!(replay.value, entry.value, "{}: mined CC drifted", p.display());
        assert!(replay.clean, "{}: watchdog violations", p.display());
        replayed += 1;
    }
    assert!(replayed >= 3, "expected the promoted corpus, found {replayed} entries");
}

/// Tier-1 slice: large-N smoke for the SoA hot path — a single-origin
/// flood over a hypercube with N ≈ 10⁵ nodes under a handful of crashes,
/// wall-time-bounded. On a clean run every node forwards the token once,
/// so deliveries = Σ degrees = dim·2^dim; each crashed node forfeits at
/// most its `dim` forwards and its `dim` inbound deliveries. Catches
/// accidental O(N²) scans or per-delivery allocations the small-N
/// equivalence matrix can't see.
#[test]
fn stress_fast_slice_large_n_smoke() {
    use netsim::{FailureSchedule, Message, NodeLogic, Round, RoundCtx, SoaEngine};

    #[derive(Clone, Debug)]
    struct Tok;
    impl Message for Tok {
        fn bit_len(&self) -> u64 {
            32
        }
    }
    struct Flood {
        origin: bool,
        seen: bool,
    }
    impl NodeLogic<Tok> for Flood {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Tok>) {
            if (ctx.round() == 1 && self.origin) || (!self.seen && !ctx.inbox().is_empty()) {
                self.seen = true;
                ctx.send(Tok);
            }
        }
    }

    let dim = 17u32; // N = 131_072
    let n: u64 = 1 << dim;
    let start = std::time::Instant::now();
    let mut schedule = FailureSchedule::none();
    for j in 1..=8u64 {
        schedule.crash(NodeId((j * (n / 9)) as u32), 2 + (j % 4));
    }
    let mut eng = SoaEngine::new(topology::hypercube(dim), schedule, |v| Flood {
        origin: v == NodeId(0),
        seen: false,
    });
    eng.use_lean_metrics();
    eng.run(Round::from(dim) + 2);
    let clean = u64::from(dim) * n;
    let deliveries = eng.telemetry().deliveries;
    assert!(
        deliveries <= clean && deliveries >= clean - 2 * 8 * u64::from(dim),
        "flood at N = {n}: {deliveries} deliveries, clean bound {clean}"
    );
    // Every live node broadcasts the 32-bit token exactly once; the 8
    // crashed nodes never get to.
    assert_eq!(eng.metrics().total_bits(), 32 * (n - 8), "bit meter tracks broadcasts");
    let wall = start.elapsed();
    // Generous even for an unoptimized debug build; an O(N²) regression
    // blows far past it.
    assert!(wall.as_secs() < 30, "large-N smoke took {wall:?}");
}

#[test]
#[ignore = "heavy: ~2000 randomized executions"]
fn stress_table2_two_thousand_runs() {
    let seeds: Vec<u64> = (0..2000).map(|t| 1_000_000 + t).collect();
    let counts = scenario_counts(Runner::new(0).run(&seeds, pair_trial));
    assert!(counts.iter().all(|&c| c > 50), "scenario coverage: {counts:?}");
}

#[test]
#[ignore = "heavy: large-N tradeoff sweep"]
fn stress_tradeoff_large_instances() {
    let seeds: Vec<u64> = (0..40).map(|t| 2_000_000 + t).collect();
    let ran = Runner::new(0).run(&seeds, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(100..300);
        let g = topology::connected_gnp(n, (3.0 * (n as f64).ln() / n as f64).min(0.3), &mut rng);
        let b = 21 * u64::from(C) * rng.gen_range(1u64..6);
        let horizon = b * u64::from(g.diameter());
        let f = rng.gen_range(1..n / 4);
        let s = schedules::random_with_edge_budget(&g, NodeId(0), f, horizon, &mut rng);
        if s.stretch_factor(&g, NodeId(0)) > f64::from(C) {
            return false;
        }
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1024)).collect();
        let inst = Instance::new(g, NodeId(0), inputs, s, 1023).unwrap();
        let cfg = TradeoffConfig { b, c: C, f, seed };
        let r = run_tradeoff(&Sum, &inst, &cfg);
        assert!(r.correct, "seed {seed} (n={n}, b={b}, f={f}): wrong result");
        assert!(r.flooding_rounds <= b + 1);
        true
    });
    let executed = ran.into_iter().filter(|&x| x).count();
    assert!(executed >= 10, "too many stretch-violating schedules skipped: {executed}");
}
