//! Property-based checks of the causal provenance layer (`netsim::causal`)
//! over real protocol executions:
//!
//! 1. the message-lineage DAG is acyclic, with every edge pointing from a
//!    strictly earlier round to a later one;
//! 2. per-node per-kind CC blame *partitions* `Metrics::bits_of` exactly —
//!    the engine emits one `Send` event per message kind with bits summed
//!    per kind, so the kinds of a node sum to its meter, bit for bit;
//! 3. the critical path's length equals the root's measured decision
//!    round, for single pairs and for full Algorithm 1 executions.

use ftagg::pair::Tweaks;
use ftagg::tradeoff::{run_tradeoff_traced, TradeoffConfig};
use ftagg::{run_pair_traced, Instance};
use netsim::{adversary::schedules, topology, Blame, CausalDag, FailureSchedule, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The blame kinds `ftagg::msg` threads through the engine, plus the
/// doubling wrapper's blanket tag and the untagged bucket.
const KNOWN_KINDS: &[&str] = &[
    "tree-construct",
    "aggregate",
    "veri",
    "interval-sample",
    "fallback",
    "doubling-stage",
    netsim::UNTAGGED,
];

fn random_instance(seed: u64, c: u32) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match seed % 3 {
        0 => topology::connected_gnp(12 + (seed % 8) as usize, 0.2, &mut rng),
        1 => topology::random_tree(10 + (seed % 8) as usize, &mut rng),
        _ => topology::grid(3, 3 + (seed % 3) as usize),
    };
    let n = g.len();
    let horizon = 60 * u64::from(g.diameter().max(1));
    let mut schedule = FailureSchedule::none();
    for _ in 0..20 {
        let cand = schedules::random_with_edge_budget(&g, NodeId(0), 4, horizon, &mut rng);
        if cand.stretch_factor(&g, NodeId(0)) <= f64::from(c) {
            schedule = cand;
            break;
        }
    }
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50)).collect();
    Instance::new(g, NodeId(0), inputs, schedule, 50).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pair-run DAG is acyclic: the trace is round-ordered, so a
    /// strictly-earlier-round parent is also an earlier vertex — a
    /// topological order, which a cyclic graph cannot have.
    #[test]
    fn pair_dag_is_acyclic_with_forward_edges(seed in 0u64..100_000) {
        let c = 2;
        let inst = random_instance(seed, c);
        let (_rep, trace) =
            run_pair_traced(&caaf::Sum, &inst, inst.schedule.clone(), c, 2, true, 0, Tweaks::default());
        let dag = CausalDag::from_trace(&trace);
        for (p, ch) in dag.edges() {
            prop_assert!(p < ch, "parent {} not before child {} in vertex order", p, ch);
            prop_assert!(
                dag.send_info(p).1 < dag.send_info(ch).1,
                "edge {} -> {} does not advance rounds ({} >= {})",
                p, ch, dag.send_info(p).1, dag.send_info(ch).1
            );
        }
    }

    /// Blame partitions the engine's own per-node bit meters exactly, and
    /// every kind the protocol emits is a known pseudocode stage.
    #[test]
    fn pair_blame_partitions_bits_of(seed in 0u64..100_000) {
        let c = 2;
        let inst = random_instance(seed, c);
        let (rep, trace) =
            run_pair_traced(&caaf::Sum, &inst, inst.schedule.clone(), c, 2, true, 0, Tweaks::default());
        let blame = Blame::from_trace(&trace);
        for v in inst.graph.nodes() {
            prop_assert_eq!(
                blame.node_total(v),
                rep.metrics.bits_of(v),
                "blame must partition bits_of at {}", v
            );
        }
        for kind in blame.kinds() {
            prop_assert!(KNOWN_KINDS.contains(&kind.as_str()), "unknown kind '{}'", kind);
        }
    }

    /// Whenever the pair decides, the critical path terminates at that
    /// decision: its length (= decision round) matches the measured
    /// rounds, its hops strictly advance in round, and the decider is the
    /// root.
    #[test]
    fn pair_critical_path_matches_the_decision_round(seed in 0u64..100_000) {
        let c = 2;
        let inst = random_instance(seed, c);
        let (rep, trace) =
            run_pair_traced(&caaf::Sum, &inst, inst.schedule.clone(), c, 2, true, 0, Tweaks::default());
        let dag = CausalDag::from_trace(&trace);
        match (rep.result(), dag.critical_path()) {
            (Some(_), Some(cp)) => {
                prop_assert_eq!(cp.decide_node, inst.root);
                prop_assert_eq!(cp.length_rounds(), rep.rounds, "path length vs measured rounds");
                for w in cp.hops.windows(2) {
                    prop_assert!(w[0].round < w[1].round, "hops must advance rounds");
                }
                if let Some(last) = cp.hops.last() {
                    prop_assert!(last.round < cp.decide_round);
                }
            }
            (None, None) => {} // aborted: no decision, no path
            (res, path) => {
                prop_assert!(false, "decide {:?} but path {:?}", res, path.is_some());
            }
        }
    }

    /// The full Algorithm 1 invariants: one decision, critical-path length
    /// == termination round, blame partitions the merged metrics.
    #[test]
    fn tradeoff_trace_explains_the_whole_run(seed in 0u64..100_000) {
        let c = 2;
        let inst = random_instance(seed, c);
        let cfg = TradeoffConfig { b: 42, c, f: 4, seed };
        let (rep, trace) = run_tradeoff_traced(&caaf::Sum, &inst, &cfg);
        prop_assert!(rep.correct);
        let dag = CausalDag::from_trace(&trace);
        let cp = dag.critical_path().expect("a tradeoff run always decides");
        prop_assert_eq!(cp.decide_node, inst.root);
        prop_assert_eq!(cp.length_rounds(), rep.rounds);
        let blame = Blame::from_trace(&trace);
        for v in inst.graph.nodes() {
            prop_assert_eq!(blame.node_total(v), rep.metrics.bits_of(v), "node {}", v);
        }
        // Coverage ⊇ the paper's mandatory set: every node alive and
        // root-connected at the decision round is causally included.
        let cov = dag.coverage();
        let dead = inst.schedule.dead_by(rep.rounds);
        for v in inst.graph.reachable_from(inst.root, &dead) {
            prop_assert!(cov.included.contains(&v), "surviving {} not included", v);
        }
    }
}

/// The acceptance pin: a deterministic Theorem 1 run on a fixed seed where
/// all three analyses must agree with the run report exactly.
#[test]
fn pinned_theorem1_run_is_fully_explained() {
    let mut rng = StdRng::seed_from_u64(1014);
    let g = topology::connected_gnp(20, 0.15, &mut rng);
    let horizon = 42 * u64::from(g.diameter().max(1));
    let s = schedules::random_with_edge_budget(&g, NodeId(0), 5, horizon, &mut rng);
    assert!(s.stretch_factor(&g, NodeId(0)) <= 2.0, "pinned seed must satisfy the stretch");
    let inputs: Vec<u64> = (0..20).map(|_| rng.gen_range(0..50)).collect();
    let inst = Instance::new(g, NodeId(0), inputs, s, 50).unwrap();
    let cfg = TradeoffConfig { b: 42, c: 2, f: 5, seed: 1014 };
    let (rep, trace) = run_tradeoff_traced(&caaf::Sum, &inst, &cfg);
    assert!(rep.correct);

    let dag = CausalDag::from_trace(&trace);
    // Critical path length == measured termination round.
    let cp = dag.critical_path().expect("the run decides");
    assert_eq!(cp.length_rounds(), rep.rounds);
    assert_eq!(cp.decide_value, rep.result);
    // Blame partitions bits_of exactly, node by node.
    let blame = Blame::from_trace(&trace);
    for v in inst.graph.nodes() {
        assert_eq!(blame.node_total(v), rep.metrics.bits_of(v), "node {v}");
    }
    assert_eq!(
        (0..inst.n() as u32).map(|v| blame.node_total(NodeId(v))).sum::<u64>(),
        rep.metrics.total_bits()
    );
    // Coverage consistent with the CAAF envelope: the surviving set is
    // included, and the decided value sits inside the envelope those
    // mandatory inputs generate.
    let cov = dag.coverage();
    let dead = inst.schedule.dead_by(rep.rounds);
    for v in inst.graph.reachable_from(inst.root, &dead) {
        assert!(cov.included.contains(&v), "surviving {v} not causally included");
    }
    assert!(inst.correct_interval(&caaf::Sum, rep.rounds).contains(rep.result));
}
