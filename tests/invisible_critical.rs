//! §4.4 — invisible critical failures.
//!
//! A critical failure is *visible* if the root eventually sees the
//! `critical_failure` flood. If the detecting parent dies before flooding,
//! the failure stays invisible — and the paper proves (full version) that
//! then all local ancestors of the invisible failure have failed too, so
//! the speculative-flooding recovery still covers the blocked subtree.
//!
//! Construction: 6-cycle `0-1-2-3-6'-5-0` (ids 0,1,2,3,4=6',5): node 2
//! fails critically (blocking 3's subtree), and its parent 1 dies exactly
//! in the round it would have detected and flooded `critical_failure(2)`.

use caaf::Sum;
use ftagg::analysis::{critical_failures, TreeView};
use ftagg::pair::AggOutcome;
use ftagg::run::run_pair_engine;
use ftagg::Instance;
use netsim::{FailureSchedule, Graph, NodeId};

#[test]
fn invisible_critical_failure_is_still_recovered() {
    // Cycle: 0-1, 1-2, 2-3, 3-4, 4-5, 5-0.
    let g = Graph::new(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
    let c = 2u32;
    let d = u64::from(g.diameter()); // 3
    let cd = u64::from(c) * d;
    let a1_end = 2 * cd + 1;
    // Tree: 1, 5 at level 1; 2, 4 at level 2; 3 at level 3 (parent 2 by
    // lowest-id tie-break). Node 2 acts at a1_end + (cd-2+1); node 1 one
    // round later.
    let action_2 = a1_end + (cd - 2 + 1);
    let action_1 = a1_end + (cd - 1 + 1);
    let mut s = FailureSchedule::none();
    s.crash(NodeId(2), action_2); // critical failure, blocks node 3
    s.crash(NodeId(1), action_1); // its detector dies before flooding

    let inst = Instance::new(g, NodeId(0), vec![1, 2, 4, 8, 16, 32], s, 32).unwrap();
    // f = edges incident to {1, 2} = (0,1),(1,2),(2,3) = 3.
    assert_eq!(inst.edge_failures(), 3);
    let t = 3;
    let (eng, params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), c, t, true);
    let root = eng.node(NodeId(0));

    // Sanity: the tree shape is as constructed.
    let tree = TreeView::from_engine(&eng, NodeId(0));
    assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
    assert_eq!(tree.parent(NodeId(2)), Some(NodeId(1)));

    // Ground truth says both 1 and 2 are critical failures…
    let truth = critical_failures(&tree, &inst.schedule, &params);
    assert!(truth.contains(&NodeId(1)) && truth.contains(&NodeId(2)));
    // …but only 1's is visible: 2's detector died before flooding.
    let visible = root.critical_failures_seen();
    assert!(visible.contains(&NodeId(1)), "root detects node 1 itself");
    assert!(
        !visible.contains(&NodeId(2)),
        "node 2's critical failure must be invisible (detector died)"
    );
    // The paper's structural fact: the invisible failure's local ancestors
    // (node 1) have all failed by the end of aggregation.
    assert!(inst.schedule.is_dead(NodeId(1), params.agg_rounds()));

    // Node 3's partial sum must still be recovered speculatively.
    assert!(
        root.flooded_psums_seen().contains_key(&NodeId(3)),
        "blocked node 3 must speculative-flood"
    );
    assert!(root.compulsory_seen().contains(&NodeId(3)));

    // ≤ t edge failures ⟹ Theorem 4 and 7 in full.
    match root.agg_outcome() {
        AggOutcome::Result(v) => {
            let iv = inst.correct_interval(&Sum, params.total_rounds());
            assert!(iv.contains(v), "result {v} outside {iv:?}");
            // Only the dead nodes' inputs (2 and 4) may be missing.
            assert!(v >= 63 - 2 - 4);
        }
        AggOutcome::Aborted => panic!("≤ t failures must not abort"),
    }
    assert!(root.veri_verdict(), "≤ t failures ⟹ VERI true");
}
