//! The PR's pinned contract: the parallel trial runner is a drop-in
//! replacement for the serial `for seed in seeds` loop — byte-identical
//! results at every thread count — and the engine's hot-path machinery
//! (reused inboxes, shared delivery, compiled crash schedule) reproduces
//! the exact message schedule and bit accounting of the reference
//! execution pinned in `golden_trace.rs`.

use caaf::Sum;
use ftagg::msg::Envelope;
use ftagg::pair::{PairNode, PairParams, Tweaks};
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::{Instance, Model};
use netsim::{
    adversary::schedules, topology, Engine, EngineKind, FailureSchedule, NodeId, Round, Runner,
    TrialStats, TrialSummary,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const C: u32 = 2;

/// Everything observable from one tradeoff trial, compared bit for bit.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Record {
    seed: u64,
    result: u64,
    correct: bool,
    rounds: u64,
    pairs_run: usize,
    max_bits: u64,
    total_bits: u64,
    bits_per_node: Vec<u64>,
    per_round: Vec<(Round, u64)>,
}

fn tradeoff_trial(seed: u64) -> Record {
    tradeoff_trial_on(seed, EngineKind::Classic)
}

fn tradeoff_trial_on(seed: u64, engine: EngineKind) -> Record {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 10 + (seed % 12) as usize;
    let g = topology::connected_gnp(n, 0.25, &mut rng);
    let b = 21 * u64::from(C) * (1 + seed % 3);
    let horizon = b * u64::from(g.diameter().max(1));
    let s = {
        let mut best = FailureSchedule::none();
        for _ in 0..50 {
            let cand = schedules::random(&g, NodeId(0), (seed % 4) as usize, horizon, &mut rng);
            if cand.stretch_factor(&g, NodeId(0)) <= f64::from(C) {
                best = cand;
                break;
            }
        }
        best
    };
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    let inst = Instance::new(g, NodeId(0), inputs, s, 63).unwrap().with_engine(engine);
    let cfg = TradeoffConfig { b, c: C, f: inst.edge_failures().max(1), seed };
    let r = run_tradeoff(&Sum, &inst, &cfg);
    Record {
        seed,
        result: r.result,
        correct: r.correct,
        rounds: r.rounds,
        pairs_run: r.pairs_run,
        max_bits: r.metrics.max_bits(),
        total_bits: r.metrics.total_bits(),
        bits_per_node: r.metrics.bits_per_node().to_vec(),
        per_round: r.metrics.per_round_bits().collect(),
    }
}

/// The headline guarantee: `Runner::run` at 1, 2, and 8 threads returns
/// exactly what the plain serial loop produces — including full per-node
/// and per-round bit ledgers — in the same order.
#[test]
fn parallel_runner_matches_serial_loop_at_1_2_8_threads() {
    let seeds: Vec<u64> = (0..24).collect();
    let serial: Vec<Record> = seeds.iter().map(|&s| tradeoff_trial(s)).collect();
    assert!(serial.iter().all(|r| r.correct), "reference trials must be correct");
    for threads in [1usize, 2, 8] {
        let parallel = Runner::exact(threads).run(&seeds, tradeoff_trial);
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

/// Aggregation through `TrialStats`/`TrialSummary` is likewise
/// thread-count-invariant (the reduction happens in seed order).
#[test]
fn trial_summaries_are_identical_across_thread_counts() {
    let seeds: Vec<u64> = (0..16).collect();
    let summarize = |threads: usize| -> TrialSummary {
        let stats = Runner::exact(threads).run(&seeds, |seed| {
            let r = tradeoff_trial(seed);
            TrialStats {
                seed,
                rounds: r.rounds,
                max_bits: r.max_bits,
                total_bits: r.total_bits,
                bottleneck: None,
                phases: vec![],
                violations: 0,
            }
        });
        stats.iter().collect()
    };
    let serial = summarize(1);
    assert!(serial.worst_max_bits > 0);
    assert_eq!(summarize(2), serial);
    assert_eq!(summarize(8), serial);
}

/// The golden-trace instance of `golden_trace.rs`: failure-free path
/// `0-1-2-3`, c = 1, t = 1.
fn golden_engine() -> Engine<Envelope, PairNode<Sum>> {
    let g = topology::path(4);
    let inst = Instance::new(g, NodeId(0), vec![1, 2, 3, 4], FailureSchedule::none(), 4).unwrap();
    let params = PairParams {
        model: Model { n: 4, root: NodeId(0), d: 3, c: 1, max_input: 4 },
        t: 1,
        run_veri: true,
        tweaks: Tweaks::default(),
    };
    let inputs = inst.inputs.clone();
    let mut eng = Engine::new(inst.graph.clone(), FailureSchedule::none(), |v| {
        PairNode::new(params, Sum, v, inputs[v.index()])
    });
    eng.enable_trace();
    eng.run(params.total_rounds());
    eng
}

/// The refactored engine reproduces the reference execution exactly: the
/// pinned per-node send schedule of `golden_trace.rs` and, stronger, a
/// bit ledger that is identical across repeated runs — also when the
/// replicas execute concurrently inside the runner.
#[test]
fn engine_reproduces_golden_trace_schedule_and_bit_counts() {
    let reference = {
        let eng = golden_engine();
        let t = eng.trace().expect("tracing enabled");
        let sends: Vec<Vec<Round>> = eng.graph().nodes().map(|v| t.send_rounds(v)).collect();
        let m = eng.metrics();
        (sends, m.bits_per_node().to_vec(), m.per_round_bits().collect::<Vec<_>>())
    };
    // The schedule pinned against Algorithms 2/3 in golden_trace.rs.
    assert_eq!(reference.0[1], vec![2, 3, 10, 16, 22, 27, 35], "node 1 schedule");
    assert_eq!(reference.0[2], vec![4, 5, 9, 17, 23, 28, 34], "node 2 schedule");
    assert_eq!(reference.0[3], vec![6, 7, 8, 18, 24, 29, 33], "node 3 schedule");
    assert!(reference.1.iter().all(|&b| b > 0), "every node broadcasts");
    assert_eq!(
        reference.1.iter().sum::<u64>(),
        reference.2.iter().map(|&(_, b)| b).sum::<u64>(),
        "per-node and per-round ledgers agree"
    );

    // Eight concurrent replicas, all byte-identical to the reference.
    let seeds: Vec<u64> = (0..8).collect();
    let replicas = Runner::exact(8).run(&seeds, |_| {
        let eng = golden_engine();
        let t = eng.trace().expect("tracing enabled");
        let sends: Vec<Vec<Round>> = eng.graph().nodes().map(|v| t.send_rounds(v)).collect();
        let m = eng.metrics();
        (sends, m.bits_per_node().to_vec(), m.per_round_bits().collect::<Vec<_>>())
    });
    for replica in replicas {
        assert_eq!(replica, reference);
    }
}

/// The SoA engine under the parallel runner: at 1, 2, and 4 worker
/// threads, every trial record — results, rounds, pairs run, full bit
/// ledgers — equals the *classic* engine's serial reference. One test,
/// two guarantees: thread-count invariance and engine equivalence under
/// concurrency.
#[test]
fn soa_runner_matches_classic_serial_loop_at_1_2_4_threads() {
    let seeds: Vec<u64> = (0..16).collect();
    let reference: Vec<Record> = seeds.iter().map(|&s| tradeoff_trial(s)).collect();
    assert!(reference.iter().all(|r| r.correct), "reference trials must be correct");
    for threads in [1usize, 2, 4] {
        let soa = Runner::exact(threads).run(&seeds, |s| tradeoff_trial_on(s, EngineKind::Soa));
        assert_eq!(soa, reference, "soa threads = {threads}");
    }
}

/// Per-worker instrumentation is observation only: `run_instrumented`
/// returns the same seed-ordered records as the plain runner at every
/// thread count, and the merged per-worker hubs land on exact totals —
/// the trial counter and the latency histogram population both equal the
/// seed count at 1, 2, and 4 workers, and the per-worker breakdown
/// partitions the trials without gaps or double counting.
#[test]
fn instrumented_runner_observes_without_perturbing_at_1_2_4_threads() {
    let seeds: Vec<u64> = (0..12).collect();
    let reference: Vec<Record> = seeds.iter().map(|&s| tradeoff_trial(s)).collect();
    for threads in [1usize, 2, 4] {
        let (records, tele) = Runner::exact(threads).run_instrumented(&seeds, tradeoff_trial);
        assert_eq!(records, reference, "instrumented threads = {threads}");
        assert_eq!(
            tele.hub.counter("runner_trials_total").get(),
            seeds.len() as u64,
            "merged trial counter, threads = {threads}"
        );
        assert_eq!(
            tele.hub.histogram("runner_trial_micros").snapshot().count(),
            seeds.len() as u64,
            "merged latency histogram population, threads = {threads}"
        );
        assert_eq!(tele.workers.len(), threads, "one load row per worker");
        assert_eq!(
            tele.workers.iter().map(|w| w.trials).sum::<u64>(),
            seeds.len() as u64,
            "worker breakdown partitions the trials, threads = {threads}"
        );
    }
}
