//! E4 — Figure 3: why speculative flooding is needed.
//!
//! The paper's scenario: a node A's partial sum is blocked by its parent's
//! critical failure, so A must flood it — but A (and its surroundings) die
//! *right before A's flooding round*. A's children D and E cannot wait to
//! find out whether A's flood happened; they flood speculatively one round
//! later, and the root recovers their partial sums.
//!
//! Topology (backup paths keep D and E root-connected after the deaths):
//!
//! ```text
//!        0 (root)
//!       /|   \
//!      1 5    7
//!      |       \
//!      2 (A)    6
//!     / \      / \
//!    3   4 ---+   |
//!    +------------+   (edges 3-6, 4-6)
//! ```

use caaf::Sum;
use ftagg::analysis::TreeView;
use ftagg::pair::AggOutcome;
use ftagg::run::run_pair_engine;
use ftagg::Instance;
use netsim::{FailureSchedule, Graph, NodeId};

fn fig3_graph() -> Graph {
    Graph::new(
        8,
        &[
            (0, 1), // root - B
            (1, 2), // B - A
            (2, 3), // A - D
            (2, 4), // A - E
            (0, 5), // root - F
            (0, 7), // root - backup relay
            (7, 6),
            (6, 3), // backup path to D
            (6, 4), // backup path to E
        ],
    )
    .unwrap()
}

#[test]
fn speculative_flooding_recovers_blocked_sums() {
    let g = fig3_graph();
    let d = u64::from(g.diameter()); // 3
    let c = 2u32;
    let cd = u64::from(c) * d;
    // Node 1 (B) is at level 1: its aggregation action round is
    // a1_end + (cd - 1 + 1); dying then makes it a critical failure, which
    // blocks A's partial sum from ever reaching the root through the tree.
    let b_action = (2 * cd + 1) + (cd - 1 + 1);
    // Node 2 (A) is at level 2: its speculative flooding round is
    // a3_start + level = (4cd + 2) + 1 + 2. Dying exactly then kills the
    // flood before it leaves A.
    let a_flood = (4 * cd + 2) + 1 + 2;
    let mut s = FailureSchedule::none();
    s.crash(NodeId(1), b_action);
    s.crash(NodeId(2), a_flood);

    let inputs = vec![1u64, 2, 4, 8, 16, 32, 64, 128];
    let inst = Instance::new(g, NodeId(0), inputs, s, 128).unwrap();
    // f = edges incident to {1, 2} = (0,1),(1,2),(2,3),(2,4) = 4.
    assert_eq!(inst.edge_failures(), 4);

    let t = 4; // tolerate all of them: Theorems 4 & 7 apply in full
    let (eng, params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), c, t, true);
    let root = eng.node(NodeId(0));

    // Tree sanity: A under B, D/E under A.
    let tree = TreeView::from_engine(&eng, NodeId(0));
    assert_eq!(tree.parent(NodeId(2)), Some(NodeId(1)));
    assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
    assert_eq!(tree.parent(NodeId(4)), Some(NodeId(2)));

    // The speculative recovery: D's and E's partial sums must have been
    // flooded (A's own flood never left A) and labeled compulsory.
    let psums = root.flooded_psums_seen();
    assert!(psums.contains_key(&NodeId(3)), "D's partial sum must reach the root");
    assert!(psums.contains_key(&NodeId(4)), "E's partial sum must reach the root");
    assert!(!psums.contains_key(&NodeId(2)), "A died before its flood left");
    assert!(root.compulsory_seen().contains(&NodeId(3)));
    assert!(root.compulsory_seen().contains(&NodeId(4)));

    // ≤ t edge failures ⟹ no abort, correct result, VERI true.
    match root.agg_outcome() {
        AggOutcome::Result(v) => {
            let iv = inst.correct_interval(&Sum, params.total_rounds());
            assert!(iv.contains(v), "result {v} outside {iv:?}");
            // D (4), E (8... wait inputs: node3=8, node4=16) and every
            // live node must be included: only 1's and 2's inputs (2, 4)
            // may be dropped.
            let full: u64 = inst.inputs.iter().sum();
            assert!(v >= full - 2 - 4, "live inputs were lost: {v} < {}", full - 6);
        }
        AggOutcome::Aborted => panic!("≤ t failures must not abort (Theorem 4)"),
    }
    assert!(root.veri_verdict(), "≤ t failures ⟹ VERI true (Theorem 7)");
}

#[test]
fn without_speculation_window_sums_survive_via_parent_flood() {
    // Control run: B still dies critically, but A survives and floods; D
    // and E then stay silent (they hear A's flood), showing the "no
    // excessive floodings" property.
    let g = fig3_graph();
    let d = u64::from(g.diameter());
    let c = 2u32;
    let cd = u64::from(c) * d;
    let b_action = (2 * cd + 1) + (cd - 1 + 1);
    let mut s = FailureSchedule::none();
    s.crash(NodeId(1), b_action);

    let inputs = vec![1u64, 2, 4, 8, 16, 32, 64, 128];
    let inst = Instance::new(g, NodeId(0), inputs, s, 128).unwrap();
    let t = 2;
    let (eng, params) = run_pair_engine(&Sum, &inst, inst.schedule.clone(), c, t, true);
    let root = eng.node(NodeId(0));

    let psums = root.flooded_psums_seen();
    assert!(psums.contains_key(&NodeId(2)), "A floods its blocked sum");
    assert!(!psums.contains_key(&NodeId(3)), "D hears A and stays silent");
    assert!(!psums.contains_key(&NodeId(4)), "E hears A and stays silent");

    match root.agg_outcome() {
        AggOutcome::Result(v) => {
            assert!(inst.correct_interval(&Sum, params.total_rounds()).contains(v));
            // Only B's input (2) may be missing.
            let full: u64 = inst.inputs.iter().sum();
            assert!(v >= full - 2);
        }
        AggOutcome::Aborted => panic!("2 edge failures ≤ t must not abort"),
    }
    assert!(root.veri_verdict());
}
