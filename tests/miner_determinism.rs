//! The miner's pinned contract: `mine` is a deterministic function of
//! its seed — the mutation walk, acceptance decisions, objective history,
//! and serialized corpus entry are byte-identical at every thread count,
//! because the coin-seed fan-out goes through `Runner` (seed-order
//! deterministic) and all mutation randomness lives in one `StdRng`.

use caaf::{Min, Sum};
use ftagg_bench::search::{
    corpus_entry, mine, Acceptance, MineConfig, MineProtocol, MineResult, Objective,
};
use ftagg_bench::Env;

const ITERATIONS: usize = 12;

fn mine_with(
    threads: usize,
    acceptance: Acceptance,
    objective: Objective,
) -> (MineConfig, Env, MineResult) {
    let env = Env::caterpillar(41, 8, 4, 42, 2);
    let cfg = MineConfig {
        iterations: ITERATIONS,
        coin_seeds: 3,
        seed: 99,
        threads,
        b: 42,
        c: 2,
        f_budget: 4,
        objective,
        protocol: MineProtocol::Tradeoff { f: 4 },
        acceptance,
        mutate_topology: false,
    };
    let r = mine(&Sum, &env.graph, &env.inputs, env.max_input, &cfg, Some(&env.schedule), None);
    (cfg, env, r)
}

/// One observable fingerprint of a mining run, compared byte for byte:
/// the serialized corpus entry covers graph, inputs, schedule, and value;
/// history and divergences cover the walk itself.
fn fingerprint(
    threads: usize,
    acceptance: Acceptance,
    objective: Objective,
) -> (String, MineResult) {
    let (cfg, env, r) = mine_with(threads, acceptance, objective);
    let text = corpus_entry("det", &Sum, &env.inputs, env.max_input, &cfg, &r).to_text();
    (text, r)
}

fn assert_identical(threads: usize, acceptance: Acceptance, objective: Objective) {
    let (base_text, base) = fingerprint(1, acceptance, objective);
    let (text, r) = fingerprint(threads, acceptance, objective);
    assert_eq!(base_text, text, "corpus entry differs at {threads} threads");
    assert_eq!(base.value, r.value, "objective differs at {threads} threads");
    assert_eq!(base.history, r.history, "history differs at {threads} threads");
    assert_eq!(base.evaluations, r.evaluations, "evaluations differ at {threads} threads");
    assert_eq!(base.divergences, r.divergences, "divergence classes differ at {threads} threads");
}

#[test]
fn hill_climb_is_thread_count_invariant() {
    for threads in [2, 4] {
        assert_identical(threads, Acceptance::HillClimb, Objective::RootCc);
    }
}

#[test]
fn annealing_is_thread_count_invariant() {
    for threads in [2, 4] {
        assert_identical(
            threads,
            Acceptance::Anneal { t0: 0.2, cooling: 0.9 },
            Objective::BottleneckCc,
        );
    }
}

#[test]
fn same_seed_same_walk_different_seed_diverges() {
    let (a_text, a) = fingerprint(1, Acceptance::HillClimb, Objective::RootCc);
    let (b_text, b) = fingerprint(1, Acceptance::HillClimb, Objective::RootCc);
    assert_eq!(a_text, b_text);
    assert_eq!(a.history, b.history);

    let env = Env::caterpillar(41, 8, 4, 42, 2);
    let cfg = MineConfig {
        iterations: ITERATIONS,
        coin_seeds: 3,
        seed: 100,
        threads: 1,
        b: 42,
        c: 2,
        f_budget: 4,
        objective: Objective::RootCc,
        protocol: MineProtocol::Tradeoff { f: 4 },
        acceptance: Acceptance::HillClimb,
        mutate_topology: false,
    };
    let other = mine(&Sum, &env.graph, &env.inputs, env.max_input, &cfg, Some(&env.schedule), None);
    // Different seeds explore different schedules; the walks agree only
    // on the shared starting point.
    let same = a.schedule.iter().count() == other.schedule.iter().count()
        && a.schedule.iter().zip(other.schedule.iter()).all(|((n1, e1), (n2, e2))| {
            n1 == n2 && e1.round == e2.round && e1.partial == e2.partial
        });
    assert!(
        !same || a.history != other.history,
        "seeds 99 and 100 produced identical walks — RNG not seeded from cfg.seed?"
    );
}

#[test]
fn topology_mutation_stays_deterministic() {
    let env = Env::caterpillar(7, 6, 3, 42, 2);
    let run = |threads: usize| {
        let cfg = MineConfig {
            iterations: ITERATIONS,
            coin_seeds: 2,
            seed: 5,
            threads,
            b: 42,
            c: 2,
            f_budget: 3,
            objective: Objective::RootCc,
            protocol: MineProtocol::Tradeoff { f: 3 },
            acceptance: Acceptance::HillClimb,
            mutate_topology: true,
        };
        let r = mine(&Min::new(63), &env.graph, &env.inputs, env.max_input, &cfg, None, None);
        corpus_entry("topo", &Min::new(63), &env.inputs, env.max_input, &cfg, &r).to_text()
    };
    let base = run(1);
    assert_eq!(base, run(2));
    assert_eq!(base, run(4));
}
