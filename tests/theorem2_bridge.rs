//! Cross-crate check of Theorem 2's assembly: the bridge built from the
//! twoparty crate's Theorem 12 must reproduce (up to constants and the
//! low-order log slack) the closed form in `ftagg::bounds`.

use ftagg::bounds::lower_bound_new;
use twoparty::bridge::theorem2_lower_bound;

#[test]
fn bridge_and_closed_form_agree_asymptotically() {
    // In the regime where f/(b·log b) dominates the log-slacks, the two
    // computations must agree within a factor of 2.
    for &(n, f, b) in
        &[(1usize << 16, 1usize << 20, 32u64), (1 << 18, 1 << 22, 64), (1 << 14, 1 << 19, 128)]
    {
        let closed = lower_bound_new(n, f, b);
        let bridged = theorem2_lower_bound(n, f, b);
        let ratio = bridged / closed;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "n={n} f={f} b={b}: bridged {bridged:.1} vs closed {closed:.1} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn both_forms_dominate_the_old_bound() {
    for &(n, f, b) in &[(1usize << 16, 1usize << 20, 32u64), (1 << 12, 1 << 18, 256)] {
        let old = ftagg::bounds::lower_bound_old(f, b);
        assert!(lower_bound_new(n, f, b) >= old);
        assert!(theorem2_lower_bound(n, f, b) >= old);
    }
}
