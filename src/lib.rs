//! Umbrella crate for the `ftagg` workspace: re-exports every member crate so
//! examples and integration tests can use a single dependency root.
pub use caaf;
pub use ftagg;
pub use netsim;
pub use twoparty;
pub use wire;
