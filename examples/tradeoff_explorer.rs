//! Explore the communication-time tradeoff: Figure 1, live.
//!
//! Sweeps the TC budget `b` and prints, for each point, the measured CC of
//! Algorithm 1 next to the paper's upper- and lower-bound curves and the
//! two baselines — a terminal rendition of Figure 1.
//!
//! Run with: `cargo run --release --example tradeoff_explorer`

use caaf::Sum;
use ftagg::baselines::{run_brute, run_folklore};
use ftagg::bounds;
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{adversary::schedules, topology, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(41);
    let n = 96;
    let f = 24;
    let c = 2;
    let root = NodeId(0);
    let graph = topology::connected_gnp(n, 0.07, &mut rng);
    let d = graph.diameter();

    let horizon = u64::from(d) * 400;
    let schedule = loop {
        let s = schedules::random_with_edge_budget(&graph, root, f, horizon, &mut rng);
        if s.stretch_factor(&graph, root) <= f64::from(c) {
            break s;
        }
    };
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
    let inst = Instance::new(graph, root, inputs, schedule, 64)?;

    println!("N = {n}, f = {} (scheduled), d = {d}, c = {c}", inst.edge_failures());
    println!(
        "\n{:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "b", "measured CC", "upper bound", "lower bound", "old lower", "correct"
    );
    for b in [42u64, 63, 84, 126, 189, 252, 378] {
        let cfg = TradeoffConfig { b, c, f, seed: b };
        let r = run_tradeoff(&Sum, &inst, &cfg);
        println!(
            "{b:>5} {:>12} {:>12.0} {:>12.1} {:>12.2} {:>12}",
            r.metrics.max_bits(),
            bounds::upper_bound_simple(n, f, b),
            bounds::lower_bound_new(n, f, b),
            bounds::lower_bound_old(f, b),
            r.correct
        );
        assert!(r.correct);
    }

    let br = run_brute(&Sum, &inst, inst.schedule.clone(), c, 0);
    let fo = run_folklore(&Sum, &inst, c, 2 * f + 2);
    println!("\nbaselines (fixed TC):");
    println!(
        "  brute force : CC = {:>7} bits (theory ~ N·logN = {:.0})",
        br.metrics.max_bits(),
        bounds::brute_cc(n)
    );
    println!(
        "  folklore    : CC = {:>7} bits over {} attempts (theory ~ f·logN = {:.0})",
        fo.metrics.max_bits(),
        fo.attempts,
        bounds::folklore_cc(n, f)
    );
    assert!(br.correct && fo.correct);
    Ok(())
}
