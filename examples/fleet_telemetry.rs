//! Fleet telemetry: fault-tolerant MEAN and VARIANCE.
//!
//! Neither statistic is a CAAF, but both decompose into CAAF components
//! (`caaf::stats`): MEAN = SUM/COUNT, VARIANCE from (Σx, n, Σx²). Each
//! component is one fault-tolerant aggregation over derived inputs —
//! three Algorithm 1 runs give crash-tolerant fleet statistics.
//!
//! Run with: `cargo run --release --example fleet_telemetry`

use caaf::stats::{combine_stats, Statistic, StatsOp, StatsSpec};
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{topology, FailureSchedule, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 36;
    let graph = topology::torus(6, 6); // a mesh fleet
    let root = NodeId(0);
    // Battery levels 0..=100 per vehicle.
    let readings: Vec<u64> = (0..n).map(|_| rng.gen_range(20..=100)).collect();
    // Two vehicles drop out mid-query.
    let mut schedule = FailureSchedule::none();
    schedule.crash(NodeId(14), 35);
    schedule.crash(NodeId(23), 60);

    println!("36-vehicle mesh fleet, gateway at node 0; 2 vehicles drop out\n");

    let spec = StatsSpec::new(Statistic::Variance);
    let mut aggregates = Vec::new();
    let mut total_cc = 0u64;
    for (i, comp) in spec.components().iter().enumerate() {
        let derived: Vec<u64> = readings.iter().map(|&x| (comp.derive)(x)).collect();
        let max = (comp.derived_max)(100);
        let inst = Instance::new(graph.clone(), root, derived, schedule.clone(), max)?;
        let cfg = TradeoffConfig { b: 63, c: 2, f: 8, seed: i as u64 };
        let op = StatsSpec::operator_for(comp);
        let rep = match op {
            StatsOp::Sum(o) => run_tradeoff(&o, &inst, &cfg),
            StatsOp::Count(o) => run_tradeoff(&o, &inst, &cfg),
        };
        assert!(rep.correct, "{} component incorrect", comp.name);
        println!(
            "  component {:<7} = {:>8}   [CC {} bits, TC {} flooding rounds]",
            comp.name,
            rep.result,
            rep.metrics.max_bits(),
            rep.flooding_rounds
        );
        total_cc += rep.metrics.max_bits();
        aggregates.push(rep.result);
    }

    let mean = combine_stats(Statistic::Mean, &aggregates[..2]).expect("fleet non-empty");
    let var = combine_stats(Statistic::Variance, &aggregates).expect("fleet non-empty");
    // Centralized reference over *all* readings (the failed vehicles'
    // inputs may legitimately be included or excluded — interval
    // semantics, so expect a small drift, not equality).
    let m_ref = readings.iter().sum::<u64>() as f64 / n as f64;
    let v_ref = readings.iter().map(|&x| (x as f64 - m_ref).powi(2)).sum::<f64>() / n as f64;

    println!("\nfleet mean battery  = {mean:.2}  (all-inputs reference {m_ref:.2})");
    println!("fleet variance      = {var:.2}  (all-inputs reference {v_ref:.2})");
    println!("total bottleneck CC = {total_cc} bits across 3 aggregations");
    assert!((mean - m_ref).abs() <= 6.0, "mean drifted past the 2-dropout tolerance");
    Ok(())
}
