//! Sensor-network scenario: a base station aggregating over a grid.
//!
//! The paper's motivating deployment: the root is the base station of a
//! wireless sensor network; sensor radios are local broadcasts; node
//! crashes are battery deaths. This example runs several different CAAFs
//! (SUM, COUNT, MAX, OR) over one 10×10 grid with mid-run failures — the
//! same Algorithm 1 machinery handles every operator, which is the point
//! of the paper's CAAF generalization.
//!
//! Run with: `cargo run --release --example sensor_network`

use caaf::{BoolOr, Caaf, Count, Max, Sum};
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{topology, FailureSchedule, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_one<C: Caaf + 'static>(op: &C, inst: &Instance, seed: u64) {
    let cfg = TradeoffConfig { b: 63, c: 2, f: 8, seed };
    let r = run_tradeoff(op, inst, &cfg);
    println!(
        "  {:<6} result = {:>6}  (correct: {})  CC = {:>6} bits  TC = {} flooding rounds",
        op.name(),
        r.result,
        r.correct,
        r.metrics.max_bits(),
        r.flooding_rounds
    );
    assert!(r.correct, "{} result incorrect", op.name());
}

fn main() -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(99);
    let side = 10;
    let graph = topology::grid(side, side);
    let n = graph.len();
    let root = NodeId(0); // base station at a corner
    let d = graph.diameter();

    // Six sensors die while the network is aggregating (interior nodes,
    // which is the hard case: they carry subtree partial sums).
    let mut schedule = FailureSchedule::none();
    for (k, &v) in [14u32, 37, 55, 61, 78, 82].iter().enumerate() {
        schedule.crash(NodeId(v), 30 + 17 * k as u64);
    }

    // Temperature-style readings in 0..=250.
    let readings: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=250)).collect();

    println!("10x10 sensor grid, base station at node 0, d = {d}");
    println!(
        "{} sensors scheduled to die; f = {} edge failures\n",
        schedule.crash_count(),
        schedule.edge_failures(&graph)
    );

    // SUM of readings.
    let inst = Instance::new(graph.clone(), root, readings.clone(), schedule.clone(), 250)?;
    println!("aggregates over raw readings:");
    run_one(&Sum, &inst, 1);
    run_one(&Max, &inst, 2);

    // COUNT of sensors whose reading exceeds a threshold.
    let over: Vec<u64> = readings.iter().map(|&v| u64::from(v > 200)).collect();
    let inst = Instance::new(graph.clone(), root, over, schedule.clone(), 1)?;
    println!("\nsensors with reading > 200:");
    run_one(&Count, &inst, 3);

    // OR: does any sensor report an alarm condition?
    let alarm: Vec<u64> = readings.iter().map(|&v| u64::from(v >= 249)).collect();
    let inst = Instance::new(graph, root, alarm, schedule, 1)?;
    println!("\nany alarm (reading >= 249)?");
    run_one(&BoolOr, &inst, 4);

    Ok(())
}
