//! Quickstart: fault-tolerant SUM on a random network.
//!
//! Builds a 64-node connected random graph, schedules a handful of crash
//! failures, and runs the paper's Algorithm 1 (the communication-time
//! tradeoff protocol) next to the two baselines, printing what each one
//! costs.
//!
//! Run with: `cargo run --release --example quickstart`

use caaf::Sum;
use ftagg::baselines::{run_brute, run_folklore};
use ftagg::tradeoff::{run_tradeoff, TradeoffConfig};
use ftagg::Instance;
use netsim::{adversary::schedules, topology, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(2014);
    let n = 64;
    let root = NodeId(0);

    // A connected random topology and a failure schedule the model allows
    // (live diameter stays within c·d for c = 2).
    let graph = topology::connected_gnp(n, 0.08, &mut rng);
    let d = graph.diameter();
    let b = 63; // TC budget in flooding rounds (≥ 21c)
    let f = 12; // known bound on edge failures
    let horizon = u64::from(d) * b;
    let schedule = loop {
        let s = schedules::random_with_edge_budget(&graph, root, f, horizon, &mut rng);
        if s.stretch_factor(&graph, root) <= 2.0 {
            break s;
        }
    };
    let inputs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100)).collect();
    let inst = Instance::new(graph, root, inputs, schedule, 100)?;

    println!(
        "N = {n} nodes, diameter d = {d}, f = {} edge failures scheduled",
        inst.edge_failures()
    );
    println!("sum of all inputs = {}\n", inst.full_aggregate(&Sum));

    // The paper's protocol (Algorithm 1).
    let cfg = TradeoffConfig { b, c: 2, f, seed: 7 };
    let r = run_tradeoff(&Sum, &inst, &cfg);
    println!("Algorithm 1  (b = {b}):");
    println!("  result   = {} (correct: {})", r.result, r.correct);
    println!("  CC       = {} bits at the bottleneck node", r.metrics.max_bits());
    println!(
        "  TC       = {} flooding rounds, {} pairs run, fallback: {}\n",
        r.flooding_rounds, r.pairs_run, r.used_fallback
    );

    // Baseline: brute-force flooding (O(1) TC, O(N log N) CC).
    let br = run_brute(&Sum, &inst, inst.schedule.clone(), 2, 0);
    println!("Brute force:");
    println!("  result   = {} (correct: {})", br.result, br.correct);
    println!("  CC       = {} bits\n", br.metrics.max_bits());

    // Baseline: folklore retry-until-clean (O(f) TC, O(f log N) CC).
    let fo = run_folklore(&Sum, &inst, 2, 2 * f + 2);
    println!("Folklore retry:");
    println!("  result   = {} (correct: {})", fo.result, fo.correct);
    println!("  CC       = {} bits over {} attempts", fo.metrics.max_bits(), fo.attempts);

    assert!(r.correct && br.correct && fo.correct);
    Ok(())
}
