//! Ad-hoc network median via fault-tolerant COUNT — and unknown-`f`
//! operation via the doubling trick.
//!
//! MEDIAN is not itself a CAAF, but the paper (citing Patt-Shamir) notes
//! it reduces to COUNT by binary search over the output domain. Each probe
//! "count how many inputs are ≤ x" is one fault-tolerant aggregation; the
//! gateway node drives the search. Because the failure bound is usually
//! unknown in an ad-hoc network, every probe here runs the *doubling*
//! variant, whose overhead adapts to the failures that actually happen.
//!
//! Run with: `cargo run --release --example adhoc_median`

use caaf::query::{median_by_counts, probe_budget};
use caaf::Count;
use ftagg::doubling::{run_doubling, DoublingConfig};
use ftagg::Instance;
use netsim::{topology, FailureSchedule, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 40;
    let graph = topology::connected_gnp(n, 0.12, &mut rng);
    let root = NodeId(0); // the gateway
    let domain_max = 1023u64;
    let latencies: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=domain_max)).collect();

    // One relay dies early on.
    let mut schedule = FailureSchedule::none();
    schedule.crash(NodeId(11), 25);
    if schedule.stretch_factor(&graph, root) > 2.0 {
        schedule = FailureSchedule::none(); // keep the model assumption
    }

    println!("{n}-node ad-hoc network, gateway = node 0, d = {}", graph.diameter());
    println!("goal: median link latency over surviving nodes\n");

    let mut total_bits = 0u64;
    let mut probes = 0u32;
    let med = median_by_counts(
        |x| {
            probes += 1;
            // One fault-tolerant COUNT per probe: node i contributes 1 iff
            // its latency is ≤ x.
            let ind: Vec<u64> = latencies.iter().map(|&v| u64::from(v <= x)).collect();
            let inst = Instance::new(graph.clone(), root, ind, schedule.clone(), 1)
                .expect("instance is valid");
            let rep = run_doubling(&Count, &inst, &DoublingConfig { c: 2, max_stages: 7 });
            assert!(rep.correct, "COUNT probe must be correct");
            total_bits += rep.metrics.max_bits();
            println!(
                "  probe #{probes}: count(latency <= {x:>4}) = {:>2}   [{} stages, {} bits]",
                rep.result,
                rep.stages,
                rep.metrics.max_bits()
            );
            rep.result
        },
        domain_max,
        n as u64,
    );

    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    println!("\ndistributed median  = {med:?}");
    println!(
        "centralized median  = {} (over *all* inputs; small drift from",
        sorted[n.div_ceil(2) - 1]
    );
    println!("                      the failed node's input is allowed by the model)");
    println!("probes used         = {probes} (budget {})", probe_budget(domain_max));
    println!("bottleneck bits     = {total_bits} total across probes");
    Ok(())
}
